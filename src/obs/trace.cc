#include "obs/trace.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/registry.hh"

namespace halsim::obs {

const char *
tracePointName(TracePoint p)
{
    switch (p) {
      case TracePoint::Ingress:
        return "ingress";
      case TracePoint::EswitchVerdict:
        return "eswitch_verdict";
      case TracePoint::RingEnqueue:
        return "ring_enqueue";
      case TracePoint::ServiceStart:
        return "service_start";
      case TracePoint::ServiceEnd:
        return "service_end";
      case TracePoint::Merge:
        return "merge";
      case TracePoint::Egress:
        return "egress";
      case TracePoint::Drop:
        return "drop";
    }
    return "?";
}

PacketTracer::PacketTracer(Config cfg)
    : sampleEvery_(std::max<std::uint64_t>(cfg.sample_every, 1))
{
    ring_.resize(std::max<std::uint32_t>(cfg.capacity, 1));
}

const TraceEvent &
PacketTracer::at(std::size_t i) const
{
    assert(i < size());
    const std::uint64_t oldest = overwritten();
    return ring_[(oldest + i) % ring_.size()];
}

void
PacketTracer::setLaneName(std::uint8_t lane, const std::string &name)
{
    assert(lane < kMaxLanes);
    laneNames_[lane] = name;
}

const std::string &
PacketTracer::laneName(std::uint8_t lane) const
{
    assert(lane < kMaxLanes);
    return laneNames_[lane];
}

void
PacketTracer::clear()
{
    recorded_ = 0;
}

void
PacketTracer::writeText(std::ostream &os) const
{
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &e = at(i);
        os << e.tick << " pkt=" << e.pkt << " "
           << tracePointName(e.point) << " lane=";
        if (!laneNames_[e.lane].empty())
            os << laneNames_[e.lane];
        else
            os << static_cast<unsigned>(e.lane);
        os << " arg=" << e.arg << "\n";
    }
}

void
PacketTracer::writeChromeEvents(std::ostream &os, int pid,
                                bool &first) const
{
    // Per-lane thread_name metadata so the viewer labels rows.
    for (std::size_t lane = 0; lane < kMaxLanes; ++lane) {
        if (laneNames_[lane].empty())
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << lane << ",\"args\":{\"name\":\""
           << jsonEscape(laneNames_[lane]) << "\"}}";
    }
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &e = at(i);
        if (!first)
            os << ",";
        first = false;
        // ts is microseconds; kUs ticks make one us, so the remainder
        // is a six-digit fraction (Chrome accepts fractional ts).
        const Tick us = e.tick / kUs;
        const Tick rem = e.tick % kUs;
        os << "{\"name\":\"" << tracePointName(e.point)
           << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us;
        if (rem) {
            char frac[16];
            std::snprintf(frac, sizeof(frac), ".%06llu",
                          static_cast<unsigned long long>(rem));
            os << frac;
        }
        os << ",\"pid\":" << pid
           << ",\"tid\":" << static_cast<unsigned>(e.lane)
           << ",\"args\":{\"pkt\":" << e.pkt << ",\"arg\":" << e.arg
           << "}}";
    }
}

void
PacketTracer::writeChromeJson(std::ostream &os, int pid) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    writeChromeEvents(os, pid, first);
    os << "],\"displayTimeUnit\":\"ns\"}";
}

} // namespace halsim::obs
