#include "obs/span.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/registry.hh"
#include "obs/trace.hh"

namespace halsim::obs {

const char *
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::Request:
        return "request";
      case SpanKind::Attempt:
        return "attempt";
      case SpanKind::FrontendLookup:
        return "frontend_lookup";
      case SpanKind::BackendQueue:
        return "backend_queue";
      case SpanKind::BackendService:
        return "backend_service";
      case SpanKind::Duplicate:
        return "duplicate";
      case SpanKind::Failover:
        return "failover";
      case SpanKind::HealthDown:
        return "health_down";
      case SpanKind::HealthUp:
        return "health_up";
      case SpanKind::GovernorEpoch:
        return "governor_epoch";
      case SpanKind::Shed:
        return "shed";
      case SpanKind::Drop:
        return "drop";
      case SpanKind::Stage:
        return "stage";
    }
    return "?";
}

namespace {

const char *
spanPhaseName(SpanPhase ph)
{
    switch (ph) {
      case SpanPhase::Begin:
        return "b";
      case SpanPhase::End:
        return "e";
      case SpanPhase::Instant:
        return "i";
    }
    return "?";
}

/** ts in microseconds with a six-digit fraction when the tick does
 *  not land on a whole us (Chrome accepts fractional ts). */
void
writeTs(std::ostream &os, Tick t)
{
    const Tick us = t / kUs;
    const Tick rem = t % kUs;
    os << us;
    if (rem) {
        char frac[16];
        std::snprintf(frac, sizeof(frac), ".%06llu",
                      static_cast<unsigned long long>(rem));
        os << frac;
    }
}

} // namespace

SpanTracer::SpanTracer(Config cfg)
    : sampleEvery_(std::max<std::uint64_t>(cfg.sample_every, 1))
{
    ring_.resize(std::max<std::uint32_t>(cfg.capacity, 1));
}

const SpanEvent &
SpanTracer::at(std::size_t i) const
{
    assert(i < size());
    const std::uint64_t oldest = overwritten();
    return ring_[(oldest + i) % ring_.size()];
}

void
SpanTracer::setLaneName(std::uint8_t lane, const std::string &name)
{
    assert(lane < kMaxLanes);
    laneNames_[lane] = name;
}

const std::string &
SpanTracer::laneName(std::uint8_t lane) const
{
    assert(lane < kMaxLanes);
    return laneNames_[lane];
}

void
SpanTracer::clear()
{
    recorded_ = 0;
}

void
SpanTracer::bridgeStages(const PacketTracer &tracer, std::uint8_t lane)
{
    const std::size_t n = tracer.size();
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &e = tracer.at(i);
        if (!wants(e.pkt))
            continue;
        record(e.tick, e.pkt, SpanKind::Stage, SpanPhase::Instant, lane,
               static_cast<std::uint32_t>(e.point), e.arg);
    }
}

void
SpanTracer::writeText(std::ostream &os) const
{
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
        const SpanEvent &e = at(i);
        os << e.tick << " id=" << e.id << " " << spanKindName(e.kind)
           << " ph=" << spanPhaseName(e.phase) << " lane=";
        if (!laneNames_[e.lane].empty())
            os << laneNames_[e.lane];
        else
            os << static_cast<unsigned>(e.lane);
        os << " a=" << e.a << " b=" << e.b << "\n";
    }
}

void
SpanTracer::writeChromeEvents(std::ostream &os, int pid,
                              bool &first) const
{
    // Per-lane thread_name metadata so the viewer labels rows.
    for (std::size_t lane = 0; lane < kMaxLanes; ++lane) {
        if (laneNames_[lane].empty())
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << lane << ",\"args\":{\"name\":\""
           << jsonEscape(laneNames_[lane]) << "\"}}";
    }

    const std::size_t n = size();

    // Pass 1: (a) an End whose Begin fell off the ring demotes to an
    // instant so every emitted "e" pairs with a "b"; (b) flow events
    // only make sense for trace ids whose root Request Begin is
    // retained (Chrome requires the flow start first). std::map keeps
    // both scans deterministic.
    std::vector<bool> demote(n, false);
    std::map<std::pair<std::uint64_t, SpanKind>, std::uint64_t> open;
    std::map<std::uint64_t, bool> rootRetained;
    for (std::size_t i = 0; i < n; ++i) {
        const SpanEvent &e = at(i);
        if (e.phase == SpanPhase::Begin) {
            ++open[{e.id, e.kind}];
            if (e.kind == SpanKind::Request)
                rootRetained[e.id] = true;
        } else if (e.phase == SpanPhase::End) {
            std::uint64_t &cnt = open[{e.id, e.kind}];
            if (cnt == 0)
                demote[i] = true;
            else
                --cnt;
        }
    }

    // Pass 2: emit records in ring order, weaving flow events off the
    // root span.
    for (std::size_t i = 0; i < n; ++i) {
        const SpanEvent &e = at(i);
        const bool asInstant =
            e.phase == SpanPhase::Instant || demote[i];
        if (!first)
            os << ",";
        first = false;
        if (asInstant) {
            os << "{\"name\":\"" << spanKindName(e.kind)
               << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
            writeTs(os, e.tick);
            os << ",\"pid\":" << pid
               << ",\"tid\":" << static_cast<unsigned>(e.lane)
               << ",\"args\":{\"id\":" << e.id << ",\"a\":" << e.a
               << ",\"b\":" << e.b << "}}";
        } else {
            os << "{\"name\":\"" << spanKindName(e.kind)
               << "\",\"cat\":\"span\",\"ph\":\""
               << (e.phase == SpanPhase::Begin ? "b" : "e")
               << "\",\"id\":" << e.id << ",\"ts\":";
            writeTs(os, e.tick);
            os << ",\"pid\":" << pid
               << ",\"tid\":" << static_cast<unsigned>(e.lane)
               << ",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b
               << "}}";
        }

        // Flow thread: "s" at the root Request Begin, "t" at every
        // child begin/instant, "f" at the Request End.
        if (e.id == 0)
            continue;
        auto it = rootRetained.find(e.id);
        if (it == rootRetained.end())
            continue;
        const char *flowPh = nullptr;
        if (e.kind == SpanKind::Request) {
            if (e.phase == SpanPhase::Begin)
                flowPh = "s";
            else if (e.phase == SpanPhase::End && !demote[i])
                flowPh = "f";
        } else if (e.phase != SpanPhase::End) {
            flowPh = "t";
        }
        if (flowPh == nullptr)
            continue;
        os << ",{\"name\":\"req\",\"cat\":\"flow\",\"ph\":\"" << flowPh
           << "\",\"id\":" << e.id << ",\"ts\":";
        writeTs(os, e.tick);
        os << ",\"pid\":" << pid
           << ",\"tid\":" << static_cast<unsigned>(e.lane);
        if (flowPh[0] == 'f')
            os << ",\"bp\":\"e\"";
        os << "}";
    }
}

void
SpanTracer::writeChromeJson(std::ostream &os, int pid) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    writeChromeEvents(os, pid, first);
    os << "],\"displayTimeUnit\":\"ns\"}";
}

const char *
frTriggerName(FrTrigger t)
{
    switch (t) {
      case FrTrigger::Fault:
        return "fault";
      case FrTrigger::Slo:
        return "slo";
      case FrTrigger::Shed:
        return "shed";
      case FrTrigger::Gov:
        return "gov";
    }
    return "?";
}

FlightRecorder::FlightRecorder(EventQueue &eq, Config cfg)
    : eq_(eq), cfg_(cfg)
{
    ring_.resize(std::max<std::uint32_t>(cfg_.capacity, 1));
    // Dump slots are pre-constructed so trigger() never allocates.
    dumps_.resize(std::max<std::uint32_t>(cfg_.max_dumps, 1));
    flushEvent_.setCallback([this] { onFlush(); });
}

FlightRecorder::~FlightRecorder()
{
    if (flushEvent_.scheduled())
        eq_.deschedule(&flushEvent_);
}

std::uint64_t
FlightRecorder::triggers(FrTrigger t) const
{
    return triggerCounts_[static_cast<std::size_t>(t)];
}

std::uint64_t
FlightRecorder::triggersTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : triggerCounts_)
        total += c;
    return total;
}

void
FlightRecorder::setLaneName(std::uint8_t lane, const std::string &name)
{
    assert(lane < kMaxLanes);
    laneNames_[lane] = name;
}

void
FlightRecorder::clear()
{
    recorded_ = 0;
    ndumps_ = 0;
    dumpsDropped_ = 0;
    triggerCounts_.fill(0);
    for (Dump &d : dumps_) {
        d.finalized = false;
        d.events.clear();
    }
    if (flushEvent_.scheduled())
        eq_.deschedule(&flushEvent_);
}

void
FlightRecorder::trigger(Tick now, FrTrigger t, std::uint32_t arg)
{
    ++triggerCounts_[static_cast<std::size_t>(t)];
    if ((cfg_.armed & frTriggerBit(t)) == 0)
        return;
    if (ndumps_ >= dumps_.size()) {
        ++dumpsDropped_;
        return;
    }
    Dump &d = dumps_[ndumps_++];
    d.at = now;
    d.trig = t;
    d.arg = arg;
    d.finalized = false;
    d.events.clear();
    // Window closes post ticks from now; one flush event serves all
    // pending dumps since deadlines are FIFO.
    if (!flushEvent_.scheduled())
        eq_.schedule(&flushEvent_, now + cfg_.post);
}

void
FlightRecorder::onFlush()
{
    const Tick now = eq_.now();
    Tick next = 0;
    bool more = false;
    for (std::uint32_t i = 0; i < ndumps_; ++i) {
        Dump &d = dumps_[i];
        if (d.finalized)
            continue;
        const Tick deadline = d.at + cfg_.post;
        if (deadline <= now) {
            snapshot(d, deadline);
        } else if (!more || deadline < next) {
            more = true;
            next = deadline;
        }
    }
    if (more)
        eq_.schedule(&flushEvent_, next);
}

void
FlightRecorder::finalizePending(Tick now)
{
    for (std::uint32_t i = 0; i < ndumps_; ++i) {
        Dump &d = dumps_[i];
        if (!d.finalized)
            snapshot(d, std::min(d.at + cfg_.post, now));
    }
    if (flushEvent_.scheduled())
        eq_.deschedule(&flushEvent_);
}

void
FlightRecorder::snapshot(Dump &d, Tick end)
{
    d.window_begin = d.at >= cfg_.pre ? d.at - cfg_.pre : 0;
    d.window_end = end;
    d.truncated = false;
    d.events.clear();
    const std::size_t n =
        recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                 : ring_.size();
    const std::uint64_t oldest =
        recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
    for (std::size_t i = 0; i < n; ++i) {
        const SpanEvent &e = ring_[(oldest + i) % ring_.size()];
        if (e.tick < d.window_begin || e.tick > d.window_end)
            continue;
        d.events.push_back(e);
    }
    // The window's head was already overwritten if the oldest
    // retained record postdates it.
    if (oldest > 0 && n > 0 &&
        ring_[oldest % ring_.size()].tick > d.window_begin)
        d.truncated = true;
    d.finalized = true;
}

void
FlightRecorder::writeText(std::ostream &os) const
{
    for (std::uint32_t i = 0; i < ndumps_; ++i) {
        const Dump &d = dumps_[i];
        if (!d.finalized)
            continue;
        os << "dump trigger=" << frTriggerName(d.trig)
           << " at=" << d.at << " arg=" << d.arg << " window=["
           << d.window_begin << "," << d.window_end
           << "] truncated=" << (d.truncated ? 1 : 0) << "\n";
        for (const SpanEvent &e : d.events) {
            os << "  " << e.tick << " id=" << e.id << " "
               << spanKindName(e.kind) << " ph=" << spanPhaseName(e.phase)
               << " lane=";
            if (!laneNames_[e.lane].empty())
                os << laneNames_[e.lane];
            else
                os << static_cast<unsigned>(e.lane);
            os << " a=" << e.a << " b=" << e.b << "\n";
        }
    }
}

void
FlightRecorder::writeJson(std::ostream &os) const
{
    os << "{\"dumps\":[";
    bool firstDump = true;
    for (std::uint32_t i = 0; i < ndumps_; ++i) {
        const Dump &d = dumps_[i];
        if (!d.finalized)
            continue;
        if (!firstDump)
            os << ",";
        firstDump = false;
        os << "{\"trigger\":\"" << frTriggerName(d.trig)
           << "\",\"at\":" << d.at << ",\"arg\":" << d.arg
           << ",\"window_begin\":" << d.window_begin
           << ",\"window_end\":" << d.window_end << ",\"truncated\":"
           << (d.truncated ? "true" : "false") << ",\"events\":[";
        bool firstEv = true;
        for (const SpanEvent &e : d.events) {
            if (!firstEv)
                os << ",";
            firstEv = false;
            os << "{\"tick\":" << e.tick << ",\"id\":" << e.id
               << ",\"kind\":\"" << spanKindName(e.kind)
               << "\",\"phase\":\"" << spanPhaseName(e.phase)
               << "\",\"lane\":";
            if (!laneNames_[e.lane].empty())
                os << "\"" << jsonEscape(laneNames_[e.lane]) << "\"";
            else
                os << static_cast<unsigned>(e.lane);
            os << ",\"a\":" << e.a << ",\"b\":" << e.b << "}";
        }
        os << "]}";
    }
    os << "],\"triggers\":{";
    for (std::uint32_t k = 0; k < kFrTriggerKinds; ++k) {
        if (k)
            os << ",";
        os << "\"" << frTriggerName(static_cast<FrTrigger>(k))
           << "\":" << triggerCounts_[k];
    }
    os << "},\"recorded\":" << recorded_
       << ",\"dumps_dropped\":" << dumpsDropped_ << "}";
}

} // namespace halsim::obs
