/**
 * @file
 * Zero-cost-when-disabled instrumentation hooks.
 *
 * Instrumented components hold a raw `PacketTracer *` that is null
 * unless tracing was requested; tracePacket() then costs one
 * perfectly-predicted branch. When enabled, the sampling test is one
 * modulo and the record is one indexed POD store — no allocation, so
 * call sites inside `// halint: hotpath` functions stay HAL-W004
 * clean.
 */

#ifndef HALSIM_OBS_HOOKS_HH
#define HALSIM_OBS_HOOKS_HH

#include "obs/trace.hh"

namespace halsim::obs {

/** Record a lifecycle point for @p pkt_id if tracing is enabled and
 *  the packet is in the sampled subset. */
inline void
tracePacket(PacketTracer *t, Tick now, std::uint64_t pkt_id,
            TracePoint p, std::uint8_t lane, std::uint32_t arg = 0)
{
    if (t != nullptr && t->wants(pkt_id))
        t->record(now, pkt_id, p, lane, arg);
}

/** Canonical lane numbering used by ServerSystem's instrumentation;
 *  components are free to use others, but sharing one table keeps
 *  the Chrome view consistent across benches. */
enum class Lane : std::uint8_t
{
    ClientLink = 0,
    Eswitch = 1,
    SnicRing = 2,
    SnicCore = 3,
    HostRing = 4,
    HostCore = 5,
    Merger = 6,
    ReturnLink = 7,
    Slb = 8,
};

inline std::uint8_t
laneId(Lane l)
{
    return static_cast<std::uint8_t>(l);
}

} // namespace halsim::obs

#endif // HALSIM_OBS_HOOKS_HH
