/**
 * @file
 * Zero-cost-when-disabled instrumentation hooks.
 *
 * Instrumented components hold a raw `PacketTracer *` that is null
 * unless tracing was requested; tracePacket() then costs one
 * perfectly-predicted branch. When enabled, the sampling test is one
 * modulo and the record is one indexed POD store — no allocation, so
 * call sites inside `// halint: hotpath` functions stay HAL-W004
 * clean.
 */

#ifndef HALSIM_OBS_HOOKS_HH
#define HALSIM_OBS_HOOKS_HH

#include "obs/span.hh"
#include "obs/trace.hh"

namespace halsim::obs {

/** Record a lifecycle point for @p pkt_id if tracing is enabled and
 *  the packet is in the sampled subset. */
inline void
tracePacket(PacketTracer *t, Tick now, std::uint64_t pkt_id,
            TracePoint p, std::uint8_t lane, std::uint32_t arg = 0)
{
    if (t != nullptr && t->wants(pkt_id))
        t->record(now, pkt_id, p, lane, arg);
}

/** Record a request-scoped span event: into the span ring if span
 *  tracing is enabled and the trace id is in the sampled subset, and
 *  into the always-on flight-recorder ring if that is armed. Both
 *  pointers are null when the corresponding feature is off, so the
 *  disabled cost is two predicted branches. */
inline void
spanRecord(SpanTracer *t, FlightRecorder *fr, Tick now,
           std::uint64_t trace_id, SpanKind k, SpanPhase ph,
           std::uint8_t lane, std::uint32_t a = 0, std::uint32_t b = 0)
{
    if (t != nullptr && t->wants(trace_id))
        t->record(now, trace_id, k, ph, lane, a, b);
    if (fr != nullptr)
        fr->record(now, trace_id, k, ph, lane, a, b);
}

/** Record a fleet-scope mark (health transition, failover, governor
 *  epoch, …): not tied to one request, so it bypasses the sampling
 *  test and uses trace id 0. */
inline void
spanMark(SpanTracer *t, FlightRecorder *fr, Tick now, SpanKind k,
         std::uint8_t lane, std::uint32_t a = 0, std::uint32_t b = 0)
{
    if (t != nullptr)
        t->record(now, 0, k, SpanPhase::Instant, lane, a, b);
    if (fr != nullptr)
        fr->record(now, 0, k, SpanPhase::Instant, lane, a, b);
}

/** Fire a flight-recorder trigger source (counts even when the
 *  source is not armed). */
inline void
frTrigger(FlightRecorder *fr, Tick now, FrTrigger t,
          std::uint32_t arg = 0)
{
    if (fr != nullptr)
        fr->trigger(now, t, arg);
}

/** Canonical lane numbering used by ServerSystem's instrumentation;
 *  components are free to use others, but sharing one table keeps
 *  the Chrome view consistent across benches. */
enum class Lane : std::uint8_t
{
    ClientLink = 0,
    Eswitch = 1,
    SnicRing = 2,
    SnicCore = 3,
    HostRing = 4,
    HostCore = 5,
    Merger = 6,
    ReturnLink = 7,
    Slb = 8,
};

inline std::uint8_t
laneId(Lane l)
{
    return static_cast<std::uint8_t>(l);
}

} // namespace halsim::obs

#endif // HALSIM_OBS_HOOKS_HH
