/**
 * @file
 * Fleet-wide distributed request tracing and the triggered flight
 * recorder.
 *
 * SpanTracer is the request-scoped sibling of PacketTracer: a
 * fixed-capacity ring of (tick, trace id, span kind, phase, lane,
 * args) POD records. Each sampled request carries one trace id from
 * the fleet client's first transmission through frontend lookup,
 * every retry attempt, backend queue/service, duplicate-suppressed
 * late responses, and failover migration. The hot-path surface is
 * the same two inline calls as PacketTracer — wants() (one modulo)
 * and record() (one indexed POD store) — so instrumented fleet
 * components stay allocation-free in steady state.
 *
 * Export is Chrome trace_event JSON: one viewer row (tid) per
 * component lane, async "b"/"e" pairs per span keyed by trace id,
 * instants for point observations, and flow events ("s"/"t"/"f")
 * linking a request's root span to its child spans across lanes.
 * A deterministic line-per-record text form backs the determinism
 * tests.
 *
 * FlightRecorder is the always-on black box: a compact
 * overwrite-oldest ring fed by the same instrumentation sites
 * (unsampled), plus a set of armed triggers (injected fault, SLO
 * epoch violation, shed-watermark crossing, governor park/unpark
 * storm). When an armed trigger fires, the recorder captures a
 * deterministic "last pre µs before, post µs after" window around
 * the trigger into a bounded dump slot; dumps serialize to JSON and
 * to the text form used by the determinism tests.
 */

#ifndef HALSIM_OBS_SPAN_HH
#define HALSIM_OBS_SPAN_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace halsim::obs {

class PacketTracer;

/** What a span record describes. Begin/End kinds become Chrome async
 *  "b"/"e" pairs; instant kinds become "i" events. */
enum class SpanKind : std::uint8_t
{
    Request = 0,     //!< root span: client send → completion/failure
    Attempt,         //!< one (re)transmission attempt (a = attempt
                     //!< index, b = backoff in ticks on begin)
    FrontendLookup,  //!< L4 hash/flow-table decision (a = backend,
                     //!< b = 1 if the flow was newly pinned)
    BackendQueue,    //!< queued in a backend ring (a = backend,
                     //!< b = occupancy)
    BackendService,  //!< backend service time (a = backend)
    Duplicate,       //!< late response suppressed by the client dedup
    Failover,        //!< frontend migrated flows off a dead backend
                     //!< (a = backend, b = flows migrated)
    HealthDown,      //!< health checker marked a backend down (a)
    HealthUp,        //!< health checker marked a backend up (a)
    GovernorEpoch,   //!< core governor epoch decision (a = action,
                     //!< b = active cores)
    Shed,            //!< admission control shed (a = backend)
    Drop,            //!< request lost (a = backend, b = reason)
    Stage,           //!< bridged per-server PacketTracer stage
                     //!< (a = TracePoint, b = original arg)
};

const char *spanKindName(SpanKind k);

enum class SpanPhase : std::uint8_t
{
    Begin = 0,
    End,
    Instant,
};

/** One span record; POD so ring slots recycle with plain stores. */
struct SpanEvent
{
    Tick tick = 0;
    std::uint64_t id = 0; //!< trace id; 0 = fleet-scope mark
    SpanKind kind = SpanKind::Request;
    SpanPhase phase = SpanPhase::Instant;
    std::uint8_t lane = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
};

/** Canonical span lanes (Chrome tids). One viewer row per fleet
 *  component; per-server stage bridges use Server. */
enum class SpanLane : std::uint8_t
{
    Client = 0,
    Frontend = 1,
    Backend = 2,
    Health = 3,
    Governor = 4,
    Server = 5,
};

inline std::uint8_t
spanLaneId(SpanLane l)
{
    return static_cast<std::uint8_t>(l);
}

class SpanTracer
{
  public:
    static constexpr std::size_t kMaxLanes = 16;

    struct Config
    {
        /** Ring capacity in records; oldest overwritten when full. */
        std::uint32_t capacity = 1u << 16;
        /** Sample requests whose id is a multiple of this (1 = all). */
        std::uint64_t sample_every = 16;
    };

    explicit SpanTracer(Config cfg);

    /** Should this request id be traced? Inline, one modulo. */
    bool
    wants(std::uint64_t trace_id) const
    {
        return trace_id % sampleEvery_ == 0;
    }

    // halint: hotpath
    void
    record(Tick t, std::uint64_t id, SpanKind k, SpanPhase ph,
           std::uint8_t lane, std::uint32_t a = 0, std::uint32_t b = 0)
    {
        SpanEvent &e = ring_[recorded_ % ring_.size()];
        e.tick = t;
        e.id = id;
        e.kind = k;
        e.phase = ph;
        e.lane = lane;
        e.a = a;
        e.b = b;
        ++recorded_;
    }

    /** Records ever written (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Records lost to ring overflow. */
    std::uint64_t
    overwritten() const
    {
        return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
    }

    /** Records currently retained. */
    std::size_t
    size() const
    {
        return recorded_ < ring_.size()
                   ? static_cast<std::size_t>(recorded_)
                   : ring_.size();
    }

    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t sampleEvery() const { return sampleEvery_; }

    /** @p i-th oldest retained record (0 = oldest). */
    const SpanEvent &at(std::size_t i) const;

    /** Name a lane for the Chrome thread_name metadata (setup time). */
    void setLaneName(std::uint8_t lane, const std::string &name);
    const std::string &laneName(std::uint8_t lane) const;

    /** Drop all records, keeping capacity and lane names. */
    void clear();

    /**
     * Re-emit a PacketTracer's retained stage records as Stage span
     * instants on @p lane, keyed by the packet id (which the fleet
     * layer aligns with the request's trace id). Lets one Chrome
     * document show the L4 decision and the intra-server stages of
     * the same sampled request.
     */
    void bridgeStages(const PacketTracer &tracer, std::uint8_t lane);

    /** Deterministic text: one "tick id kind phase lane a b" per
     *  line in record order. */
    void writeText(std::ostream &os) const;

    /**
     * Just the event objects (comma-separated, no surrounding
     * array), for merging several tracers into one document.
     * Begin/End records become async "b"/"e" pairs (cat "span",
     * id = trace id); an End whose Begin was overwritten demotes to
     * an instant so the document always pairs cleanly. Flow events
     * ("s"/"t"/"f", cat "flow") link each retained root Request span
     * to its child records. @p first tracks whether a leading comma
     * is needed across calls.
     */
    void writeChromeEvents(std::ostream &os, int pid,
                           bool &first) const;

    /** Complete Chrome trace_event document. */
    void writeChromeJson(std::ostream &os, int pid = 0) const;

  private:
    std::vector<SpanEvent> ring_;
    std::array<std::string, kMaxLanes> laneNames_;
    std::uint64_t recorded_ = 0;
    std::uint64_t sampleEvery_ = 16;
};

/** Flight-recorder trigger sources; bit positions in the armed
 *  mask. */
enum class FrTrigger : std::uint8_t
{
    Fault = 0, //!< fault injector applied an armed fault
    Slo = 1,   //!< SloMonitor closed an epoch over target
    Shed = 2,  //!< a backend crossed its shed watermark upward
    Gov = 3,   //!< governor park/unpark storm within a window
};

constexpr std::uint32_t kFrTriggerKinds = 4;

const char *frTriggerName(FrTrigger t);

inline std::uint32_t
frTriggerBit(FrTrigger t)
{
    return 1u << static_cast<std::uint32_t>(t);
}

class FlightRecorder
{
  public:
    static constexpr std::size_t kMaxLanes = SpanTracer::kMaxLanes;

    struct Config
    {
        /** Ring capacity in records; oldest overwritten when full. */
        std::uint32_t capacity = 1u << 14;
        /** Capture window before a trigger. */
        Tick pre = 200 * kUs;
        /** Capture window after a trigger (snapshot is taken then). */
        Tick post = 100 * kUs;
        /** Bitmask of armed FrTrigger bits (frTriggerBit()). */
        std::uint32_t armed = 0;
        /** At most this many dumps per run; later triggers only
         *  count. */
        std::uint32_t max_dumps = 4;
    };

    FlightRecorder(EventQueue &eq, Config cfg);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;
    ~FlightRecorder();

    const Config &config() const { return cfg_; }

    // halint: hotpath
    void
    record(Tick t, std::uint64_t id, SpanKind k, SpanPhase ph,
           std::uint8_t lane, std::uint32_t a = 0, std::uint32_t b = 0)
    {
        SpanEvent &e = ring_[recorded_ % ring_.size()];
        e.tick = t;
        e.id = id;
        e.kind = k;
        e.phase = ph;
        e.lane = lane;
        e.a = a;
        e.b = b;
        ++recorded_;
    }

    /**
     * A trigger source fired. Always counts; if the source is armed
     * and a dump slot is free, opens a pending dump whose window
     * closes (and is snapshotted from the ring) post ticks later.
     * Allocation-free: dump slots are pre-reserved.
     */
    void trigger(Tick now, FrTrigger t, std::uint32_t arg = 0);

    /** Snapshot any still-pending dumps now (end of run). */
    void finalizePending(Tick now);

    std::uint64_t recorded() const { return recorded_; }
    std::uint64_t triggers(FrTrigger t) const;
    std::uint64_t triggersTotal() const;
    std::uint64_t dumps() const { return ndumps_; }
    std::uint64_t dumpsDropped() const { return dumpsDropped_; }

    void setLaneName(std::uint8_t lane, const std::string &name);

    /** Reset ring, dumps, and counters (measure-window start). */
    void clear();

    /** Deterministic text: one header + record lines per dump. */
    void writeText(std::ostream &os) const;

    /** {"dumps":[{trigger, at, arg, window, truncated, events}]}. */
    void writeJson(std::ostream &os) const;

  private:
    struct Dump
    {
        Tick at = 0;
        FrTrigger trig = FrTrigger::Fault;
        std::uint32_t arg = 0;
        Tick window_begin = 0;
        Tick window_end = 0;
        bool truncated = false;
        bool finalized = false;
        std::vector<SpanEvent> events;
    };

    void onFlush();
    void snapshot(Dump &d, Tick end);

    EventQueue &eq_;
    Config cfg_;
    std::vector<SpanEvent> ring_;
    std::array<std::string, kMaxLanes> laneNames_;
    std::uint64_t recorded_ = 0;
    std::vector<Dump> dumps_;
    std::uint32_t ndumps_ = 0;
    std::uint64_t dumpsDropped_ = 0;
    std::array<std::uint64_t, kFrTriggerKinds> triggerCounts_{};
    CallbackEvent flushEvent_;
};

} // namespace halsim::obs

#endif // HALSIM_OBS_SPAN_HH
