#include "obs/energy.hh"

#include <stdexcept>

#include "obs/registry.hh"

namespace halsim::obs {

void
EnergyLedger::addDynamic(std::string name,
                         std::function<double()> joules,
                         std::function<double()> watts)
{
    if (!joules || !watts) {
        throw std::invalid_argument("energy account '" + name +
                                    "' needs joules and watts readers");
    }
    Account a;
    a.name = std::move(name);
    a.read_joules = std::move(joules);
    a.read_watts = std::move(watts);
    accounts_.push_back(std::move(a));
}

void
EnergyLedger::addStatic(std::string name, double watts)
{
    Account a;
    a.name = std::move(name);
    a.static_w = watts;
    a.is_static = true;
    accounts_.push_back(std::move(a));
}

void
EnergyLedger::beginWindow(Tick now)
{
    windowStart_ = now;
    windowEnd_ = now;
    closed_ = false;
    for (Account &a : accounts_) {
        a.base_j = a.is_static ? 0.0 : a.read_joules();
        a.window_j = 0.0;
    }
}

void
EnergyLedger::endWindow(Tick now)
{
    windowEnd_ = now;
    closed_ = true;
    const double secs = windowSeconds();
    for (Account &a : accounts_) {
        a.window_j = a.is_static ? a.static_w * secs
                                 : a.read_joules() - a.base_j;
    }
}

double
EnergyLedger::windowSeconds() const
{
    return windowEnd_ > windowStart_
               ? static_cast<double>(windowEnd_ - windowStart_) /
                     static_cast<double>(kSec)
               : 0.0;
}

const EnergyLedger::Account *
EnergyLedger::find(const std::string &name) const
{
    for (const Account &a : accounts_) {
        if (a.name == name)
            return &a;
    }
    return nullptr;
}

double
EnergyLedger::joules(const std::string &name) const
{
    const Account *a = find(name);
    return a != nullptr ? a->window_j : 0.0;
}

double
EnergyLedger::joulesPrefix(const std::string &prefix) const
{
    double j = 0.0;
    for (const Account &a : accounts_) {
        if (a.name == prefix ||
            (a.name.size() > prefix.size() + 1 &&
             a.name.compare(0, prefix.size(), prefix) == 0 &&
             a.name[prefix.size()] == '.')) {
            j += a.window_j;
        }
    }
    return j;
}

double
EnergyLedger::totalJ() const
{
    double j = 0.0;
    for (const Account &a : accounts_)
        j += a.window_j;
    return j;
}

void
EnergyLedger::attachObs(StatsRegistry *reg, const std::string &prefix,
                        bool series) const
{
    if (reg == nullptr)
        return;
    // The registered closures point into accounts_: no account may be
    // added after attachObs (registration is construction-time only).
    for (const Account &a : accounts_) {
        const Account *acct = &a;
        reg->fnGauge(prefix + "." + a.name + ".joules",
                     [acct] { return acct->window_j; });
        if (a.is_static) {
            reg->fnGauge(prefix + "." + a.name + ".power_w",
                         [acct] { return acct->static_w; });
        } else {
            reg->probe(prefix + "." + a.name + ".power_w",
                       [acct] { return acct->read_watts(); },
                       StatsRegistry::ProbeOptions{series, 0.01, 1000.0,
                                                   16});
        }
    }
    reg->fnGauge(prefix + ".total_j", [this] { return totalJ(); });
    reg->fnGauge(prefix + ".window_seconds",
                 [this] { return windowSeconds(); });
}

} // namespace halsim::obs
