#include "obs/report.hh"

#include <cstdio>
#include <fstream>

#include "obs/registry.hh"

namespace halsim::obs {

namespace {

bool
writeFile(const std::string &path, const SweepReport &r,
          void (SweepReport::*write)(std::ostream &) const)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    (r.*write)(os);
    os << "\n";
    return os.good();
}

} // namespace

void
SweepReport::writeResultsJson(std::ostream &os) const
{
    os << "{\"bench\":\"" << jsonEscape(bench_) << "\"";
    os << ",\"threads\":" << threads_;
    os << ",\"points\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (i)
            os << ",";
        os << rows_[i];
    }
    os << "]}";
}

void
SweepReport::writeStatsJson(std::ostream &os) const
{
    os << "{\"bench\":\"" << jsonEscape(bench_) << "\",\"points\":[";
    for (std::size_t i = 0; i < stats_.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"label\":\"" << jsonEscape(statsLabels_[i])
           << "\",\"stats\":" << stats_[i] << "}";
    }
    os << "]}";
}

void
SweepReport::writeTraceJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    if (hasMeta_) {
        os << "{\"name\":\"run_metadata\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":0,\"args\":{\"bench\":\""
           << jsonEscape(bench_) << "\",\"preset\":\""
           << jsonEscape(metaPreset_) << "\",\"seed\":" << metaSeed_
           << ",\"build\":\"" << kBuildTag << "\"}}";
        first = false;
    }
    for (const std::string &t : traces_) {
        if (t.empty())
            continue;
        if (!first)
            os << ",";
        first = false;
        os << t;
    }
    os << "],\"displayTimeUnit\":\"ns\"}";
}

bool
SweepReport::saveResultsJson(const std::string &path) const
{
    return writeFile(path, *this, &SweepReport::writeResultsJson);
}

bool
SweepReport::saveStatsJson(const std::string &path) const
{
    return writeFile(path, *this, &SweepReport::writeStatsJson);
}

bool
SweepReport::saveTraceJson(const std::string &path) const
{
    return writeFile(path, *this, &SweepReport::writeTraceJson);
}

void
SweepReport::writeFlightRecJson(std::ostream &os) const
{
    os << "{\"bench\":\"" << jsonEscape(bench_) << "\",\"points\":[";
    for (std::size_t i = 0; i < flightrecs_.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"label\":\"" << jsonEscape(frLabels_[i])
           << "\",\"flightrec\":" << flightrecs_[i] << "}";
    }
    os << "]}";
}

bool
SweepReport::saveFlightRecJson(const std::string &path) const
{
    return writeFile(path, *this, &SweepReport::writeFlightRecJson);
}

} // namespace halsim::obs
