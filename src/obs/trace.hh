/**
 * @file
 * Packet-lifecycle tracer: a fixed-capacity ring buffer of
 * (tick, packet, lifecycle point, lane, arg) records covering
 * ingress → eSwitch verdict → ring enqueue → service → merge →
 * egress for sampled packets.
 *
 * The hot-path surface is two inline calls — wants() (one modulo)
 * and record() (one indexed POD store) — both allocation-free, so
 * instrumented accept()/service paths keep passing halint HAL-W004.
 * The ring overwrites its oldest record on overflow (the tail of a
 * run is what a trace viewer wants); overwritten() reports how many
 * records were lost that way.
 *
 * Export: Chrome `trace_event` JSON (load via chrome://tracing or
 * https://ui.perfetto.dev) and a deterministic line-per-record text
 * form used by the determinism tests.
 */

#ifndef HALSIM_OBS_TRACE_HH
#define HALSIM_OBS_TRACE_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace halsim::obs {

/** Lifecycle stations a sampled packet passes through. */
enum class TracePoint : std::uint8_t
{
    Ingress,       //!< entered the server on the client link
    EswitchVerdict, //!< eSwitch rule matched (arg = rule index)
    RingEnqueue,   //!< accepted into a DPDK ring (arg = occupancy)
    ServiceStart,  //!< poll core began the NF (arg = core index)
    ServiceEnd,    //!< poll core finished the NF (arg = core index)
    Merge,         //!< response rewritten by the traffic merger
    Egress,        //!< left the server on the return link
    Drop,          //!< lost: ring full, blackholed, faulted, …
};

const char *tracePointName(TracePoint p);

/** One trace record; POD so ring slots recycle with plain stores. */
struct TraceEvent
{
    Tick tick = 0;
    std::uint64_t pkt = 0;
    TracePoint point = TracePoint::Ingress;
    std::uint8_t lane = 0;
    std::uint32_t arg = 0;
};

class PacketTracer
{
  public:
    static constexpr std::size_t kMaxLanes = 16;

    struct Config
    {
        /** Ring capacity in records; oldest overwritten when full. */
        std::uint32_t capacity = 1u << 16;
        /** Sample packets whose id is a multiple of this (1 = all). */
        std::uint64_t sample_every = 64;
    };

    explicit PacketTracer(Config cfg);

    /** Should this packet id be traced? Inline, one modulo. */
    bool
    wants(std::uint64_t pkt_id) const
    {
        return pkt_id % sampleEvery_ == 0;
    }

    // halint: hotpath
    void
    record(Tick t, std::uint64_t pkt, TracePoint p, std::uint8_t lane,
           std::uint32_t arg = 0)
    {
        TraceEvent &e = ring_[recorded_ % ring_.size()];
        e.tick = t;
        e.pkt = pkt;
        e.point = p;
        e.lane = lane;
        e.arg = arg;
        ++recorded_;
    }

    /** Records ever written (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Records lost to ring overflow. */
    std::uint64_t
    overwritten() const
    {
        return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
    }

    /** Records currently retained. */
    std::size_t
    size() const
    {
        return recorded_ < ring_.size()
                   ? static_cast<std::size_t>(recorded_)
                   : ring_.size();
    }

    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t sampleEvery() const { return sampleEvery_; }

    /** @p i-th oldest retained record (0 = oldest). */
    const TraceEvent &at(std::size_t i) const;

    /** Name a lane for the Chrome thread_name metadata (setup time). */
    void setLaneName(std::uint8_t lane, const std::string &name);
    const std::string &laneName(std::uint8_t lane) const;

    /** Drop all records, keeping capacity and lane names. */
    void clear();

    /** Deterministic text: one "tick pkt point lane arg" per line in
     *  record order. */
    void writeText(std::ostream &os) const;

    /**
     * Complete Chrome trace_event document:
     * {"traceEvents":[...]}. Records become instant events (ph "i")
     * with ts in microseconds; lanes map to tids with thread_name
     * metadata.
     */
    void writeChromeJson(std::ostream &os, int pid = 0) const;

    /**
     * Just the event objects (comma-separated, no surrounding
     * array), for merging several tracers into one document.
     * @p first tracks whether a leading comma is needed across calls.
     */
    void writeChromeEvents(std::ostream &os, int pid,
                           bool &first) const;

  private:
    std::vector<TraceEvent> ring_;
    std::array<std::string, kMaxLanes> laneNames_;
    std::uint64_t recorded_ = 0;
    std::uint64_t sampleEvery_ = 64;
};

} // namespace halsim::obs

#endif // HALSIM_OBS_TRACE_HH
