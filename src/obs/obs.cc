#include "obs/obs.hh"

namespace halsim::obs {

Observability::Observability(EventQueue &eq, const ObsConfig &cfg)
    : eq_(eq), cfg_(cfg)
{
    if (cfg_.trace) {
        PacketTracer::Config tc;
        tc.capacity = cfg_.trace_capacity;
        tc.sample_every = cfg_.trace_sample_every;
        tracer_ = std::make_unique<PacketTracer>(tc);
    }
    if (cfg_.spans) {
        SpanTracer::Config sc;
        sc.capacity = cfg_.span_capacity;
        sc.sample_every = cfg_.span_sample_every;
        spans_ = std::make_unique<SpanTracer>(sc);
    }
    if (cfg_.flightrec) {
        FlightRecorder::Config fc;
        fc.capacity = cfg_.fr_capacity;
        fc.pre = cfg_.fr_pre;
        fc.post = cfg_.fr_post;
        fc.armed = cfg_.fr_armed;
        fc.max_dumps = cfg_.fr_max_dumps;
        flightRec_ = std::make_unique<FlightRecorder>(eq_, fc);
    }
    sampleEvent_.setCallback([this] { onSample(); });
}

Observability::~Observability()
{
    stopSampling();
}

void
Observability::startSampling(Tick until)
{
    if (!cfg_.stats || cfg_.sample_epoch == 0)
        return;
    until_ = until;
    if (eq_.now() + cfg_.sample_epoch <= until_)
        eq_.reschedule(&sampleEvent_, eq_.now() + cfg_.sample_epoch);
}

void
Observability::stopSampling()
{
    if (sampleEvent_.scheduled())
        eq_.deschedule(&sampleEvent_);
}

void
Observability::onSample()
{
    reg_.sampleProbes(eq_.now());
    if (eq_.now() + cfg_.sample_epoch <= until_)
        eq_.schedule(&sampleEvent_, eq_.now() + cfg_.sample_epoch);
}

} // namespace halsim::obs
