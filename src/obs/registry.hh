/**
 * @file
 * Hierarchical statistics registry (gem5-style): named counters,
 * gauges, accumulators, quantile histograms, and sampled probes
 * organised in a dotted component tree
 * (`server.snic.core3.busy_frac`, `server.hlb.director.fwd_th_gbps`).
 *
 * Registration happens at component-construction time and may
 * allocate; the handles it returns are stable for the registry's
 * lifetime, so steady-state updates are plain inlined increments and
 * stores — nothing on the simulator hot path touches the registry
 * structure itself (DESIGN.md §10).
 *
 * Two read-side mechanisms avoid hot-path hooks entirely:
 *  - fnCounter() binds a closure that reads an existing component
 *    counter lazily at serialization time;
 *  - probe() binds a closure sampled every sampling epoch into an
 *    Accumulator + Histogram (+ optional time series), giving
 *    occupancy/utilization distributions without touching accept().
 */

#ifndef HALSIM_OBS_REGISTRY_HH
#define HALSIM_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace halsim::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { v_ += n; }
    std::uint64_t value() const { return v_; }
    void reset() { v_ = 0; }
    void merge(const Counter &o) { v_ += o.v_; }

  private:
    std::uint64_t v_ = 0;
};

/** Last-written scalar (e.g. the director's current Fwd_Th). */
class Gauge
{
  public:
    void
    set(double v)
    {
        v_ = v;
        written_ = true;
    }

    double value() const { return v_; }
    bool written() const { return written_; }

    void
    reset()
    {
        v_ = 0.0;
        written_ = false;
    }

    /** Merge keeps the other side's value when it was ever written. */
    void
    merge(const Gauge &o)
    {
        if (o.written_) {
            v_ = o.v_;
            written_ = true;
        }
    }

  private:
    double v_ = 0.0;
    bool written_ = false;
};

/**
 * The registry: a flat store of dotted paths rendered as a tree.
 *
 * Paths are dot-separated segments of [a-z0-9_]; registering an
 * invalid or duplicate path throws std::invalid_argument. All
 * serialization orders entries lexicographically by path, so output
 * is independent of registration order.
 */
class StatsRegistry
{
  public:
    /** Probe registration knobs. */
    struct ProbeOptions
    {
        /** Keep the full (tick, value) series, not just the summary. */
        bool series = false;
        /** Histogram binning for the sampled values. */
        double hist_lo = 1.0;
        double hist_hi = 1e6;
        unsigned hist_bins_per_decade = 16;
    };

    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    // --- registration (setup time; handles stay valid) ---------------

    Counter *counter(const std::string &path);
    Gauge *gauge(const std::string &path);
    Accumulator *accumulator(const std::string &path);
    Histogram *histogram(const std::string &path, double lo = 1.0,
                         double hi = 1e6,
                         unsigned bins_per_decade = 16);

    /** Counter whose value is read from the component lazily. */
    void fnCounter(const std::string &path,
                   std::function<std::uint64_t()> read);

    /** Scalar whose value is read from the component lazily at
     *  serialization time (the double-valued sibling of fnCounter;
     *  the energy ledger uses it to expose per-component joules
     *  without any hot-path hook). */
    void fnGauge(const std::string &path,
                 std::function<double()> read);

    /** Scalar sampled every epoch into a summary + histogram. */
    void probe(const std::string &path, std::function<double()> read);
    void probe(const std::string &path, std::function<double()> read,
               ProbeOptions opt);

    // --- sampling ------------------------------------------------------

    /** Read every probe once, recording @p now for time series. */
    void sampleProbes(Tick now);

    /** Probe samples taken so far (epochs seen). */
    std::uint64_t sampleEpochs() const { return sampleEpochs_; }

    // --- lookup (tests and views) --------------------------------------

    const Counter *findCounter(const std::string &path) const;
    const Gauge *findGauge(const std::string &path) const;
    const Accumulator *findAccumulator(const std::string &path) const;
    const Histogram *findHistogram(const std::string &path) const;

    /** Counter value by path, resolving fnCounter bindings too;
     *  returns 0 for unknown paths. */
    std::uint64_t counterValue(const std::string &path) const;

    /** Gauge value by path, resolving fnGauge bindings too; returns
     *  0.0 for unknown paths. */
    double gaugeValue(const std::string &path) const;

    /** Probe summary by path (null when @p path is not a probe). */
    const Accumulator *probeSummary(const std::string &path) const;
    const Histogram *probeHistogram(const std::string &path) const;

    std::size_t size() const { return entries_.size(); }

    // --- lifecycle -----------------------------------------------------

    /** Zero every owned stat, probe summary, and time series
     *  (fnCounter bindings read live values and are unaffected). */
    void resetAll();

    /**
     * Fold another registry of the same shape into this one:
     * counters add, accumulators/histograms merge, gauges keep the
     * written value. Shape mismatch throws std::invalid_argument.
     */
    void merge(const StatsRegistry &o);

    // --- serialization -------------------------------------------------

    /** Nested JSON object following the dotted tree. */
    void writeJson(std::ostream &os) const;

    /** Flat deterministic text: one sorted "path = value" per line. */
    void writeText(std::ostream &os) const;

  private:
    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Accum,
        Histogram,
        FnCounter,
        FnGauge,
        Probe,
    };

    struct Entry
    {
        std::string path;
        Kind kind;
        Counter counter;
        Gauge gauge;
        Accumulator accum;
        std::unique_ptr<Histogram> hist;
        std::function<std::uint64_t()> readCounter;
        std::function<double()> readGauge;
        std::function<double()> readProbe;
        bool series = false;
        std::vector<std::pair<Tick, double>> samples;
    };

    Entry &addEntry(const std::string &path, Kind kind);
    const Entry *find(const std::string &path, Kind kind) const;
    void writeLeafJson(std::ostream &os, const Entry &e) const;

    std::vector<std::unique_ptr<Entry>> entries_;
    std::uint64_t sampleEpochs_ = 0;
};

/** JSON string escaping shared by every obs serializer. */
std::string jsonEscape(const std::string &s);

/** Shortest round-trippable decimal rendering of @p v — the one
 *  number format every serializer uses, so emitted JSON is stable
 *  across platforms and byte-comparable across runs. */
std::string jsonNumber(double v);

} // namespace halsim::obs

#endif // HALSIM_OBS_REGISTRY_HH
