/**
 * @file
 * SweepReport: the single serialization point for bench artifacts.
 *
 * A sweep produces one row per point; each row arrives as a
 * pre-rendered JSON object (built from RunResult::toJson() plus the
 * point's labeling fields), so the report stays generic and src/obs
 * keeps no dependency on src/core. Three documents can be emitted:
 *
 *  - results:   {"bench","threads","points":[{...}, ...]}
 *  - stats:     {"bench","points":[{"label","stats":{tree}}, ...]}
 *  - trace:     {"traceEvents":[...]} with one pid per sweep point
 *  - flightrec: {"bench","points":[{"label","flightrec":{...}}]}
 *
 * Trace documents can carry one leading "run_metadata" metadata event
 * (config preset, seed, build tag) so an exported trace identifies
 * the run that produced it. The build tag is a fixed constant — never
 * derived from git or the clock — keeping artifacts byte-deterministic.
 */

#ifndef HALSIM_OBS_REPORT_HH
#define HALSIM_OBS_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace halsim::obs {

/** Build tag stamped into trace metadata. A constant by design:
 *  artifacts must be byte-identical across checkouts and rebuilds,
 *  so no git-describe, hostnames, or timestamps. */
inline constexpr const char *kBuildTag = "halsim";

class SweepReport
{
  public:
    SweepReport(std::string bench_name, unsigned threads)
        : bench_(std::move(bench_name)), threads_(threads)
    {}

    /** Append one point row: a complete JSON object string. */
    void addRow(std::string json_object)
    {
        rows_.push_back(std::move(json_object));
    }

    /** Attach a point's stats tree (a JSON object string). */
    void
    addStats(std::string label, std::string stats_json)
    {
        statsLabels_.push_back(std::move(label));
        stats_.push_back(std::move(stats_json));
    }

    /** Attach a point's Chrome events (comma-joined objects, no
     *  surrounding brackets; may be empty). */
    void addTraceEvents(std::string chrome_events)
    {
        traces_.push_back(std::move(chrome_events));
    }

    /** Attach a point's flight-recorder document (a JSON object
     *  string from FlightRecorder::writeJson). */
    void
    addFlightRec(std::string label, std::string fr_json)
    {
        frLabels_.push_back(std::move(label));
        flightrecs_.push_back(std::move(fr_json));
    }

    /** Stamp trace documents with a leading run_metadata event
     *  (preset, seed, kBuildTag). */
    void
    setTraceMetadata(std::string preset, std::uint64_t seed)
    {
        metaPreset_ = std::move(preset);
        metaSeed_ = seed;
        hasMeta_ = true;
    }

    std::size_t rowCount() const { return rows_.size(); }

    void writeResultsJson(std::ostream &os) const;
    void writeStatsJson(std::ostream &os) const;
    void writeTraceJson(std::ostream &os) const;
    void writeFlightRecJson(std::ostream &os) const;

    /** File variants; return false (and print to stderr) on I/O
     *  failure. */
    bool saveResultsJson(const std::string &path) const;
    bool saveStatsJson(const std::string &path) const;
    bool saveTraceJson(const std::string &path) const;
    bool saveFlightRecJson(const std::string &path) const;

  private:
    std::string bench_;
    unsigned threads_;
    std::vector<std::string> rows_;
    std::vector<std::string> statsLabels_;
    std::vector<std::string> stats_;
    std::vector<std::string> traces_;
    std::vector<std::string> frLabels_;
    std::vector<std::string> flightrecs_;
    std::string metaPreset_;
    std::uint64_t metaSeed_ = 0;
    bool hasMeta_ = false;
};

} // namespace halsim::obs

#endif // HALSIM_OBS_REPORT_HH
