/**
 * @file
 * SweepReport: the single serialization point for bench artifacts.
 *
 * A sweep produces one row per point; each row arrives as a
 * pre-rendered JSON object (built from RunResult::toJson() plus the
 * point's labeling fields), so the report stays generic and src/obs
 * keeps no dependency on src/core. Three documents can be emitted:
 *
 *  - results:  {"bench","threads","points":[{...}, ...]}
 *  - stats:    {"bench","points":[{"label","stats":{tree}}, ...]}
 *  - trace:    {"traceEvents":[...]} with one pid per sweep point
 */

#ifndef HALSIM_OBS_REPORT_HH
#define HALSIM_OBS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace halsim::obs {

class SweepReport
{
  public:
    SweepReport(std::string bench_name, unsigned threads)
        : bench_(std::move(bench_name)), threads_(threads)
    {}

    /** Append one point row: a complete JSON object string. */
    void addRow(std::string json_object)
    {
        rows_.push_back(std::move(json_object));
    }

    /** Attach a point's stats tree (a JSON object string). */
    void
    addStats(std::string label, std::string stats_json)
    {
        statsLabels_.push_back(std::move(label));
        stats_.push_back(std::move(stats_json));
    }

    /** Attach a point's Chrome events (comma-joined objects, no
     *  surrounding brackets; may be empty). */
    void addTraceEvents(std::string chrome_events)
    {
        traces_.push_back(std::move(chrome_events));
    }

    std::size_t rowCount() const { return rows_.size(); }

    void writeResultsJson(std::ostream &os) const;
    void writeStatsJson(std::ostream &os) const;
    void writeTraceJson(std::ostream &os) const;

    /** File variants; return false (and print to stderr) on I/O
     *  failure. */
    bool saveResultsJson(const std::string &path) const;
    bool saveStatsJson(const std::string &path) const;
    bool saveTraceJson(const std::string &path) const;

  private:
    std::string bench_;
    unsigned threads_;
    std::vector<std::string> rows_;
    std::vector<std::string> statsLabels_;
    std::vector<std::string> stats_;
    std::vector<std::string> traces_;
};

} // namespace halsim::obs

#endif // HALSIM_OBS_REPORT_HH
