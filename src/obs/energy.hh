/**
 * @file
 * EnergyLedger: per-component joule accounting over the measurement
 * window — the breakdown behind the paper's Fig. 3 energy-efficiency
 * claim (194 W idle server, 29-37 W SNIC drawing 0.5-2 % of system
 * power, host CPU dominating the dynamic draw).
 *
 * The ledger is pull-based and event-free: each *dynamic* account
 * binds two closures onto an existing power integrator (monotone
 * joules-so-far and current watts); each *static* account is a
 * constant wattage integrated analytically. beginWindow()/endWindow()
 * snapshot the joules at the measurement boundaries, so warmup
 * contributions and the post-window drain can never leak into the
 * reported energy, and nothing runs on the simulator hot path — the
 * ledger exists (and RunResult energy fields are filled) whether or
 * not observability is enabled, keeping RunResult byte-identical
 * with obs on or off.
 *
 * totalJ() is defined as the *literal sum* of the account windows, so
 * "components sum to total" holds exactly by construction; the
 * conservation test compares it against the independently integrated
 * system power instead.
 */

#ifndef HALSIM_OBS_ENERGY_HH
#define HALSIM_OBS_ENERGY_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace halsim::obs {

class StatsRegistry;

class EnergyLedger
{
  public:
    /** One named energy account. */
    struct Account
    {
        std::string name;
        /** Monotone joules-so-far (dynamic accounts only). */
        std::function<double()> read_joules;
        /** Current draw in watts (dynamic accounts only). */
        std::function<double()> read_watts;
        /** Constant draw integrated analytically (static accounts). */
        double static_w = 0.0;
        bool is_static = false;
        /** Snapshot at beginWindow(). */
        double base_j = 0.0;
        /** Window energy fixed by endWindow(). */
        double window_j = 0.0;
    };

    EnergyLedger() = default;
    EnergyLedger(const EnergyLedger &) = delete;
    EnergyLedger &operator=(const EnergyLedger &) = delete;

    // --- registration (construction time) ---------------------------

    /** Dynamic account: @p joules must be monotone non-decreasing in
     *  simulated time; @p watts is its instantaneous derivative. */
    void addDynamic(std::string name, std::function<double()> joules,
                    std::function<double()> watts);

    /** Static account: @p watts drawn continuously (idle baseline). */
    void addStatic(std::string name, double watts);

    // --- windowing (run() boundaries) -------------------------------

    /** Snapshot every dynamic account at the measurement start. */
    void beginWindow(Tick now);

    /**
     * Fix each account's window energy at the measurement end. Must
     * be called *before* the post-window drain so drained packets'
     * power draw stays out of the window (the same boundary at which
     * RunResult reads its power averages).
     */
    void endWindow(Tick now);

    // --- reads (valid after endWindow) ------------------------------

    /** Window energy of @p name; 0 for unknown accounts. */
    double joules(const std::string &name) const;

    /**
     * Window energy summed over @p prefix: the account named exactly
     * @p prefix plus every "<prefix>.<sub>" account. Lets component
     * reads (e.g. "snic_cpu") work whether the component is one
     * aggregate account or governor-armed per-core sub-accounts
     * ("snic_cpu.core0", ...).
     */
    double joulesPrefix(const std::string &prefix) const;

    /** Literal sum of every account's window energy. */
    double totalJ() const;

    /** Measurement window length in seconds. */
    double windowSeconds() const;

    std::size_t size() const { return accounts_.size(); }
    const std::vector<Account> &accounts() const { return accounts_; }

    // --- observability ----------------------------------------------

    /**
     * Register the ledger under @p prefix: per-account
     * `<prefix>.<name>.joules` lazy gauges, `<prefix>.<name>.power_w`
     * epoch-sampled probes (dynamic) or constant gauges (static),
     * plus `<prefix>.total_j` and `<prefix>.window_seconds`.
     * @p series forwards the (tick, value) time-series flag to the
     * power probes. No-op when @p reg is null.
     */
    void attachObs(StatsRegistry *reg, const std::string &prefix,
                   bool series) const;

  private:
    const Account *find(const std::string &name) const;

    std::vector<Account> accounts_;
    Tick windowStart_ = 0;
    Tick windowEnd_ = 0;
    bool closed_ = false;
};

} // namespace halsim::obs

#endif // HALSIM_OBS_ENERGY_HH
