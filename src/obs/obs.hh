/**
 * @file
 * Observability facade: one object bundling the stats registry, the
 * packet tracer, and the periodic probe sampler, owned by
 * ServerSystem when `ServerConfig::obs` enables it.
 *
 * Determinism contract: turning observability on must not change
 * simulation results. The sampler is a read-only CallbackEvent (no
 * RNG draws, no packet mutation), tracer records are read-only
 * observations, and all registry reads happen either lazily at
 * serialization time or inside the sampler — so RunResult stays
 * byte-identical with obs on or off (proved by test_determinism).
 */

#ifndef HALSIM_OBS_OBS_HH
#define HALSIM_OBS_OBS_HH

#include <cstdint>
#include <memory>
#include <ostream>

#include "obs/registry.hh"
#include "obs/span.hh"
#include "obs/trace.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"

namespace halsim::obs {

/** Per-run observability knobs (part of ServerConfig). */
struct ObsConfig
{
    /** Register + periodically sample the component stats tree. */
    bool stats = false;

    /** Record sampled packet lifecycles into the trace ring. */
    bool trace = false;

    /** Probe sampling period. */
    Tick sample_epoch = 1 * kMs;

    /** Keep full (tick, value) series for probes, not just summaries. */
    bool series = false;

    /** Trace ring capacity in records. */
    std::uint32_t trace_capacity = 1u << 16;

    /** Trace packets whose id is a multiple of this (1 = all). */
    std::uint64_t trace_sample_every = 64;

    /** Record sampled request-scoped spans into the span ring. */
    bool spans = false;

    /** Span ring capacity in records. */
    std::uint32_t span_capacity = 1u << 16;

    /** Trace requests whose id is a multiple of this (1 = all). */
    std::uint64_t span_sample_every = 16;

    /** Run the always-on flight recorder (black-box capture). */
    bool flightrec = false;

    /** Flight-recorder ring capacity in records. */
    std::uint32_t fr_capacity = 1u << 14;

    /** Flight-recorder capture window before a trigger. */
    Tick fr_pre = 200 * kUs;

    /** Flight-recorder capture window after a trigger. */
    Tick fr_post = 100 * kUs;

    /** Bitmask of armed FrTrigger bits (frTriggerBit()). */
    std::uint32_t fr_armed = 0;

    /** At most this many flight-recorder dumps per run. */
    std::uint32_t fr_max_dumps = 4;

    bool
    enabled() const
    {
        return stats || trace || spans || flightrec;
    }
};

class Observability
{
  public:
    Observability(EventQueue &eq, const ObsConfig &cfg);

    Observability(const Observability &) = delete;
    Observability &operator=(const Observability &) = delete;
    ~Observability();

    const ObsConfig &config() const { return cfg_; }

    StatsRegistry &registry() { return reg_; }
    const StatsRegistry &registry() const { return reg_; }

    /** Null unless cfg.trace. */
    PacketTracer *tracer() { return tracer_.get(); }
    const PacketTracer *tracer() const { return tracer_.get(); }

    /** Null unless cfg.spans. */
    SpanTracer *spans() { return spans_.get(); }
    const SpanTracer *spans() const { return spans_.get(); }

    /** Null unless cfg.flightrec. */
    FlightRecorder *flightRecorder() { return flightRec_.get(); }
    const FlightRecorder *flightRecorder() const
    {
        return flightRec_.get();
    }

    /**
     * Begin epoch-periodic probe sampling, stopping after the last
     * epoch at or before @p until (no-op unless cfg.stats). The first
     * sample fires one epoch from now.
     */
    void startSampling(Tick until);

    /** Cancel any pending sample. */
    void stopSampling();

    void writeStatsJson(std::ostream &os) const { reg_.writeJson(os); }
    void writeStatsText(std::ostream &os) const { reg_.writeText(os); }

  private:
    void onSample();

    EventQueue &eq_;
    ObsConfig cfg_;
    StatsRegistry reg_;
    std::unique_ptr<PacketTracer> tracer_;
    std::unique_ptr<SpanTracer> spans_;
    std::unique_ptr<FlightRecorder> flightRec_;
    CallbackEvent sampleEvent_;
    Tick until_ = 0;
};

} // namespace halsim::obs

#endif // HALSIM_OBS_OBS_HH
