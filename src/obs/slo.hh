/**
 * @file
 * SLO monitor: deterministic rolling-window latency-quantile tracking
 * against a configurable p99 target (the SLO analysis behind the
 * paper's Table 2), plus tail-sample attribution to the dominant
 * queueing stage from PacketTracer lifecycle records.
 *
 * The monitor tiles the measurement window into fixed tumbling epochs
 * and keeps ONE preallocated fixed-bin histogram that is closed and
 * re-armed at each epoch boundary — rollover is detected
 * arithmetically inside record(), so the monitor schedules no events
 * and cannot perturb event order (turning it on leaves every other
 * RunResult field byte-identical; test_determinism holds this). An
 * epoch violates the SLO when its p99 exceeds the target.
 *
 * record() is hot-path-safe: increments, compares, and Histogram
 * bin stores only; the epoch-close bookkeeping runs once per epoch,
 * not per packet.
 */

#ifndef HALSIM_OBS_SLO_HH
#define HALSIM_OBS_SLO_HH

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace halsim::obs {

class PacketTracer;

/** Per-run SLO knobs (part of ServerConfig, independent of
 *  ObsConfig so RunResult SLO fields exist with obs off). */
struct SloConfig
{
    /** p99 latency target in microseconds; 0 disables monitoring. */
    double target_p99_us = 0.0;

    /** Tumbling violation-window length. */
    Tick epoch = 5 * kMs;

    bool enabled() const { return target_p99_us > 0.0; }
};

/**
 * Tail-latency attribution: how many over-target traced packets were
 * dominated by each lifecycle stage (Ingress→RingEnqueue dispatch,
 * RingEnqueue→ServiceStart queue wait, ServiceStart→ServiceEnd
 * service, ServiceEnd→Egress egress).
 */
struct SloAttribution
{
    std::uint64_t dispatch = 0;
    std::uint64_t queue_wait = 0;
    std::uint64_t service = 0;
    std::uint64_t egress = 0;
    /** Traced packets with a complete span that exceeded the target. */
    std::uint64_t attributed = 0;
};

/**
 * Walk the tracer's retained records, reconstruct per-packet stage
 * spans, and attribute each packet whose in-server span exceeds
 * @p target_ticks to its slowest stage. Serialization-time only
 * (allocates); deterministic for a given ring content.
 */
SloAttribution attributeTail(const PacketTracer &tracer,
                             Tick target_ticks);

class SloMonitor
{
  public:
    explicit SloMonitor(const SloConfig &cfg);

    SloMonitor(const SloMonitor &) = delete;
    SloMonitor &operator=(const SloMonitor &) = delete;

    const SloConfig &config() const { return cfg_; }

    /**
     * Start the epoch clock at the measurement boundary; samples at
     * or after @p end are ignored (the post-window drain must not
     * open extra epochs).
     */
    void beginWindow(Tick start, Tick end);

    /** Record one response latency observed at @p now. */
    // halint: hotpath
    void
    record(Tick now, Tick latency)
    {
        if (now >= windowEnd_ || now < epochStart_)
            return;
        if (now >= epochStart_ + cfg_.epoch)
            rollTo(now);
        epochHist_.sample(static_cast<double>(latency));
    }

    /** Close every remaining epoch up to the window end. */
    void finishWindow();

    // --- reads (valid after finishWindow) ---------------------------

    /** Epochs elapsed in the window (including empty ones). */
    std::uint64_t epochs() const { return epochs_; }

    /** Epochs whose p99 exceeded the target. */
    std::uint64_t violationEpochs() const { return violations_; }

    /** Largest per-epoch p99 seen, microseconds. */
    double worstEpochP99Us() const { return worstP99Us_; }

    double targetP99Us() const { return cfg_.target_p99_us; }

    /**
     * Observer called when an epoch closes over target, with the
     * closing epoch's end tick and its p99 in microseconds. Fires
     * from inside closeEpoch(), so the callback must be read-only
     * with respect to the simulation (the flight-recorder trigger
     * is; see DESIGN.md §16).
     */
    void
    setOnViolation(std::function<void(Tick, double)> cb)
    {
        onViolation_ = std::move(cb);
    }

  private:
    /** Close epochs until @p now falls inside the current one. */
    void rollTo(Tick now);
    void closeEpoch();

    SloConfig cfg_;
    Tick targetTicks_ = 0;
    Tick windowStart_ = 0;
    Tick windowEnd_ = 0;
    Tick epochStart_ = 0;
    Histogram epochHist_;
    std::uint64_t epochs_ = 0;
    std::uint64_t violations_ = 0;
    double worstP99Us_ = 0.0;
    bool finished_ = false;
    std::function<void(Tick, double)> onViolation_;
};

/** Null-check hook matching tracePacket(): one predicted branch when
 *  monitoring is disabled. */
inline void
sloRecord(SloMonitor *m, Tick now, Tick latency)
{
    if (m != nullptr)
        m->record(now, latency);
}

} // namespace halsim::obs

#endif // HALSIM_OBS_SLO_HH
