#include "obs/slo.hh"

#include <algorithm>
#include <map>

#include "obs/trace.hh"

namespace halsim::obs {

SloMonitor::SloMonitor(const SloConfig &cfg)
    : cfg_(cfg),
      targetTicks_(static_cast<Tick>(cfg.target_p99_us *
                                     static_cast<double>(kUs)))
{
}

void
SloMonitor::beginWindow(Tick start, Tick end)
{
    windowStart_ = start;
    windowEnd_ = end;
    epochStart_ = start;
    epochHist_.reset();
    epochs_ = 0;
    violations_ = 0;
    worstP99Us_ = 0.0;
    finished_ = false;
}

void
SloMonitor::rollTo(Tick now)
{
    // Close every epoch that ended at or before @p now (empty ones
    // included: a silent epoch is still an epoch, and skipping it
    // would make the count depend on traffic timing).
    while (epochStart_ + cfg_.epoch <= now &&
           epochStart_ + cfg_.epoch <= windowEnd_) {
        closeEpoch();
        epochStart_ += cfg_.epoch;
    }
}

void
SloMonitor::closeEpoch()
{
    const double p99_us =
        epochHist_.p99() / static_cast<double>(kUs);
    ++epochs_;
    if (p99_us > cfg_.target_p99_us) {
        ++violations_;
        if (onViolation_)
            onViolation_(epochStart_ + cfg_.epoch, p99_us);
    }
    worstP99Us_ = std::max(worstP99Us_, p99_us);
    epochHist_.reset();
}

void
SloMonitor::finishWindow()
{
    if (finished_)
        return;
    finished_ = true;
    // Close the in-progress epoch and any silent trailing ones so a
    // window of length W always reports ceil(W / epoch) epochs.
    while (epochStart_ < windowEnd_) {
        closeEpoch();
        epochStart_ += cfg_.epoch;
    }
}

SloAttribution
attributeTail(const PacketTracer &tracer, Tick target_ticks)
{
    // Reconstruct per-packet stage spans from whatever the ring
    // retained. std::map keeps the walk deterministic (halint W003
    // bans unordered iteration); this runs at serialization time, so
    // allocation is fine.
    struct Span
    {
        Tick ingress = 0, enq = 0, start = 0, end = 0, egress = 0;
        bool has_ingress = false, has_enq = false, has_start = false,
             has_end = false, has_egress = false;
    };
    std::map<std::uint64_t, Span> spans;

    for (std::size_t i = 0; i < tracer.size(); ++i) {
        const TraceEvent &e = tracer.at(i);
        Span &s = spans[e.pkt];
        switch (e.point) {
          case TracePoint::Ingress:
            if (!s.has_ingress) {
                s.ingress = e.tick;
                s.has_ingress = true;
            }
            break;
          case TracePoint::RingEnqueue:
            if (!s.has_enq) {
                s.enq = e.tick;
                s.has_enq = true;
            }
            break;
          case TracePoint::ServiceStart:
            if (!s.has_start) {
                s.start = e.tick;
                s.has_start = true;
            }
            break;
          case TracePoint::ServiceEnd:
            // Last end wins: a pipelined second stage extends the
            // service span.
            s.end = e.tick;
            s.has_end = true;
            break;
          case TracePoint::Egress:
            if (!s.has_egress) {
                s.egress = e.tick;
                s.has_egress = true;
            }
            break;
          default:
            break;
        }
    }

    SloAttribution out;
    for (const auto &[pkt, s] : spans) {
        (void)pkt;
        if (!(s.has_ingress && s.has_enq && s.has_start && s.has_end &&
              s.has_egress)) {
            continue;   // partial span (ring overwrote part of it)
        }
        if (s.egress <= s.ingress ||
            s.egress - s.ingress <= target_ticks) {
            continue;   // within target (in-server span approximates
                        // the e2e latency up to the fixed link hops)
        }
        const Tick dispatch = s.enq >= s.ingress ? s.enq - s.ingress : 0;
        const Tick queue = s.start >= s.enq ? s.start - s.enq : 0;
        const Tick service = s.end >= s.start ? s.end - s.start : 0;
        const Tick egress = s.egress >= s.end ? s.egress - s.end : 0;
        ++out.attributed;
        const Tick worst =
            std::max(std::max(dispatch, queue), std::max(service, egress));
        if (worst == queue)
            ++out.queue_wait;   // queue wait wins ties: it is the
                                // balancer-actionable stage
        else if (worst == service)
            ++out.service;
        else if (worst == dispatch)
            ++out.dispatch;
        else
            ++out.egress;
    }
    return out;
}

} // namespace halsim::obs
