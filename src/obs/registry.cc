#include "obs/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace halsim::obs {

namespace {

bool
validPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    bool prev_dot = false;
    for (char c : path) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

std::string
jsonNumber(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char probe[64];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

StatsRegistry::Entry &
StatsRegistry::addEntry(const std::string &path, Kind kind)
{
    if (!validPath(path)) {
        throw std::invalid_argument(
            "stats path '" + path +
            "' is not dotted lowercase [a-z0-9_] segments");
    }
    for (const auto &e : entries_) {
        if (e->path == path) {
            throw std::invalid_argument("stats path '" + path +
                                        "' registered twice");
        }
    }
    entries_.push_back(std::make_unique<Entry>());
    Entry &e = *entries_.back();
    e.path = path;
    e.kind = kind;
    return e;
}

const StatsRegistry::Entry *
StatsRegistry::find(const std::string &path, Kind kind) const
{
    for (const auto &e : entries_) {
        if (e->kind == kind && e->path == path)
            return e.get();
    }
    return nullptr;
}

Counter *
StatsRegistry::counter(const std::string &path)
{
    return &addEntry(path, Kind::Counter).counter;
}

Gauge *
StatsRegistry::gauge(const std::string &path)
{
    return &addEntry(path, Kind::Gauge).gauge;
}

Accumulator *
StatsRegistry::accumulator(const std::string &path)
{
    return &addEntry(path, Kind::Accum).accum;
}

Histogram *
StatsRegistry::histogram(const std::string &path, double lo, double hi,
                         unsigned bins_per_decade)
{
    Entry &e = addEntry(path, Kind::Histogram);
    e.hist = std::make_unique<Histogram>(lo, hi, bins_per_decade);
    return e.hist.get();
}

void
StatsRegistry::fnCounter(const std::string &path,
                         std::function<std::uint64_t()> read)
{
    if (!read)
        throw std::invalid_argument("fnCounter '" + path +
                                    "' needs a read function");
    addEntry(path, Kind::FnCounter).readCounter = std::move(read);
}

void
StatsRegistry::fnGauge(const std::string &path,
                       std::function<double()> read)
{
    if (!read)
        throw std::invalid_argument("fnGauge '" + path +
                                    "' needs a read function");
    addEntry(path, Kind::FnGauge).readGauge = std::move(read);
}

void
StatsRegistry::probe(const std::string &path,
                     std::function<double()> read)
{
    probe(path, std::move(read), ProbeOptions{});
}

void
StatsRegistry::probe(const std::string &path,
                     std::function<double()> read, ProbeOptions opt)
{
    if (!read)
        throw std::invalid_argument("probe '" + path +
                                    "' needs a read function");
    Entry &e = addEntry(path, Kind::Probe);
    e.readProbe = std::move(read);
    e.series = opt.series;
    e.hist = std::make_unique<Histogram>(opt.hist_lo, opt.hist_hi,
                                         opt.hist_bins_per_decade);
}

void
StatsRegistry::sampleProbes(Tick now)
{
    for (auto &e : entries_) {
        if (e->kind != Kind::Probe)
            continue;
        const double v = e->readProbe();
        e->accum.sample(v);
        e->hist->sample(v);
        if (e->series)
            e->samples.emplace_back(now, v);
    }
    ++sampleEpochs_;
}

const Counter *
StatsRegistry::findCounter(const std::string &path) const
{
    const Entry *e = find(path, Kind::Counter);
    return e ? &e->counter : nullptr;
}

const Gauge *
StatsRegistry::findGauge(const std::string &path) const
{
    const Entry *e = find(path, Kind::Gauge);
    return e ? &e->gauge : nullptr;
}

const Accumulator *
StatsRegistry::findAccumulator(const std::string &path) const
{
    const Entry *e = find(path, Kind::Accum);
    return e ? &e->accum : nullptr;
}

const Histogram *
StatsRegistry::findHistogram(const std::string &path) const
{
    const Entry *e = find(path, Kind::Histogram);
    return e ? e->hist.get() : nullptr;
}

std::uint64_t
StatsRegistry::counterValue(const std::string &path) const
{
    for (const auto &e : entries_) {
        if (e->path != path)
            continue;
        if (e->kind == Kind::Counter)
            return e->counter.value();
        if (e->kind == Kind::FnCounter)
            return e->readCounter();
    }
    return 0;
}

double
StatsRegistry::gaugeValue(const std::string &path) const
{
    for (const auto &e : entries_) {
        if (e->path != path)
            continue;
        if (e->kind == Kind::Gauge)
            return e->gauge.value();
        if (e->kind == Kind::FnGauge)
            return e->readGauge();
    }
    return 0.0;
}

const Accumulator *
StatsRegistry::probeSummary(const std::string &path) const
{
    const Entry *e = find(path, Kind::Probe);
    return e ? &e->accum : nullptr;
}

const Histogram *
StatsRegistry::probeHistogram(const std::string &path) const
{
    const Entry *e = find(path, Kind::Probe);
    return e ? e->hist.get() : nullptr;
}

void
StatsRegistry::resetAll()
{
    for (auto &e : entries_) {
        e->counter.reset();
        e->gauge.reset();
        e->accum.reset();
        if (e->hist)
            e->hist->reset();
        e->samples.clear();
    }
    sampleEpochs_ = 0;
}

void
StatsRegistry::merge(const StatsRegistry &o)
{
    if (entries_.size() != o.entries_.size())
        throw std::invalid_argument("registry merge: shape mismatch");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Entry &a = *entries_[i];
        const Entry &b = *o.entries_[i];
        if (a.path != b.path || a.kind != b.kind) {
            throw std::invalid_argument(
                "registry merge: entry mismatch at '" + a.path + "'");
        }
        a.counter.merge(b.counter);
        a.gauge.merge(b.gauge);
        a.accum.merge(b.accum);
        if (a.hist && b.hist)
            a.hist->merge(*b.hist);
        a.samples.insert(a.samples.end(), b.samples.begin(),
                         b.samples.end());
    }
    sampleEpochs_ += o.sampleEpochs_;
}

void
StatsRegistry::writeLeafJson(std::ostream &os, const Entry &e) const
{
    switch (e.kind) {
      case Kind::Counter:
        os << e.counter.value();
        break;
      case Kind::FnCounter:
        os << e.readCounter();
        break;
      case Kind::Gauge:
        os << jsonNumber(e.gauge.value());
        break;
      case Kind::FnGauge:
        os << jsonNumber(e.readGauge());
        break;
      case Kind::Accum:
        os << "{\"count\":" << e.accum.count()
           << ",\"mean\":" << jsonNumber(e.accum.mean())
           << ",\"min\":" << jsonNumber(e.accum.count() ? e.accum.min() : 0)
           << ",\"max\":" << jsonNumber(e.accum.count() ? e.accum.max() : 0)
           << ",\"stddev\":" << jsonNumber(e.accum.stddev()) << "}";
        break;
      case Kind::Histogram:
      case Kind::Probe: {
        const Histogram &h = *e.hist;
        os << "{\"count\":" << h.count()
           << ",\"mean\":" << jsonNumber(h.mean())
           << ",\"min\":" << jsonNumber(h.minSample())
           << ",\"max\":" << jsonNumber(h.maxSample())
           << ",\"p50\":" << jsonNumber(h.quantile(0.50))
           << ",\"p90\":" << jsonNumber(h.quantile(0.90))
           << ",\"p99\":" << jsonNumber(h.quantile(0.99));
        if (e.kind == Kind::Probe && e.series) {
            os << ",\"series\":[";
            for (std::size_t i = 0; i < e.samples.size(); ++i) {
                if (i)
                    os << ",";
                os << "[" << e.samples[i].first << ","
                   << jsonNumber(e.samples[i].second) << "]";
            }
            os << "]";
        }
        os << "}";
        break;
      }
    }
}

void
StatsRegistry::writeJson(std::ostream &os) const
{
    // Render the dotted paths as a nested object. Entries are sorted
    // lexicographically; in the dotted grammar a branch name never
    // also names a leaf (registration would have allowed it, but the
    // instrumented tree never does), so a simple prefix walk works.
    std::vector<const Entry *> sorted;
    sorted.reserve(entries_.size());
    for (const auto &e : entries_)
        sorted.push_back(e.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry *a, const Entry *b) {
                  return a->path < b->path;
              });

    std::vector<std::string> open; // current branch stack
    os << "{";
    for (std::size_t n = 0; n < sorted.size(); ++n) {
        const Entry &e = *sorted[n];
        std::vector<std::string> parts;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= e.path.size(); ++i) {
            if (i == e.path.size() || e.path[i] == '.') {
                parts.push_back(e.path.substr(start, i - start));
                start = i + 1;
            }
        }
        // Longest common prefix with the open branch stack.
        std::size_t common = 0;
        while (common < open.size() && common + 1 < parts.size() &&
               open[common] == parts[common]) {
            ++common;
        }
        for (std::size_t i = open.size(); i > common; --i)
            os << "}";
        open.resize(common);
        if (n)
            os << ",";
        for (std::size_t i = common; i + 1 < parts.size(); ++i) {
            os << "\"" << parts[i] << "\":{";
            open.push_back(parts[i]);
        }
        os << "\"" << parts.back() << "\":";
        writeLeafJson(os, e);
    }
    for (std::size_t i = open.size(); i > 0; --i)
        os << "}";
    os << "}";
}

void
StatsRegistry::writeText(std::ostream &os) const
{
    std::vector<const Entry *> sorted;
    sorted.reserve(entries_.size());
    for (const auto &e : entries_)
        sorted.push_back(e.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry *a, const Entry *b) {
                  return a->path < b->path;
              });
    for (const Entry *e : sorted) {
        os << e->path << " = ";
        switch (e->kind) {
          case Kind::Counter:
            os << e->counter.value();
            break;
          case Kind::FnCounter:
            os << e->readCounter();
            break;
          case Kind::Gauge:
            os << jsonNumber(e->gauge.value());
            break;
          case Kind::FnGauge:
            os << jsonNumber(e->readGauge());
            break;
          case Kind::Accum:
            os << "count " << e->accum.count() << " mean "
               << jsonNumber(e->accum.mean());
            break;
          case Kind::Histogram:
          case Kind::Probe:
            os << "count " << e->hist->count() << " mean "
               << jsonNumber(e->hist->count() ? e->hist->mean() : 0)
               << " p50 " << jsonNumber(e->hist->quantile(0.50))
               << " p99 " << jsonNumber(e->hist->quantile(0.99));
            break;
        }
        os << "\n";
    }
}

} // namespace halsim::obs
