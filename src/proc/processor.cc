#include "proc/processor.hh"

#include <algorithm>
#include <cassert>

#include "obs/registry.hh"

namespace halsim::proc {

namespace {

/**
 * Turn a processed request into its response frame: reply-to
 * addressing from the packet metadata, source identity of the
 * processing service. Host-sourced responses carry the host IP here;
 * HAL's traffic merger later rewrites it to the SNIC identity.
 */
void
makeResponse(net::Packet &pkt, const net::MacAddr &service_mac,
             net::Ipv4Addr service_ip, net::Processor tag)
{
    auto eth = pkt.eth();
    eth.setSrc(service_mac);
    eth.setDst(pkt.clientMac);

    auto ip = pkt.ip();
    ip.setSrcRaw(service_ip);
    ip.setDstRaw(pkt.clientIp);
    ip.fillChecksum();

    auto udp = pkt.udp();
    udp.setSrcPort(udp.dstPort());
    udp.setDstPort(pkt.clientPort);

    pkt.isResponse = true;
    pkt.processedBy = tag;
}

} // namespace

PollCore::PollCore(EventQueue &eq, Config cfg, nic::DpdkRing &ring,
                   funcs::NetworkFunction &fn,
                   coherence::CoherenceDomain *domain, net::PacketSink &tx,
                   PowerMeter &power)
    : eq_(eq), cfg_(std::move(cfg)), ring_(ring), fn_(fn),
      domain_(domain), tx_(tx), power_(power)
{
    sleepEvent_.setCallback([this] { maybeSleep(); });
    finishEvent_.setCallback([this] { finish(std::move(inflight_)); });
    // Without power management a poll-mode core burns full power from
    // the start (§III-B: DPDK busy-waiting keeps the CPU hot even
    // when idle); with it, waiting costs only the umwait fraction.
    setPowerLevel(idleLevel());
    if (cfg_.sleep.enabled)
        eq_.scheduleIn(&sleepEvent_, cfg_.sleep.sleep_after);
}

double
PollCore::freqScale() const
{
    return cfg_.freq_scale != nullptr ? *cfg_.freq_scale : 1.0;
}

void
PollCore::setPowerLevel(double frac)
{
    // Dynamic power scales ~f^2 under DVFS (voltage tracks
    // frequency). The factor is sampled at state transitions, which
    // happen far more often than governor epochs.
    const double f = freqScale();
    const double watts = frac * f * f * cfg_.profile.core_active_w;
    power_.add(watts - currentW_);
    wattsTw_.set(watts, eq_.now());
    currentW_ = watts;
    powerLevel_ = frac;
}

double
PollCore::joulesNow() const
{
    return wattsTw_.integral(eq_.now()) / static_cast<double>(kSec);
}

double
PollCore::idleLevel() const
{
    return cfg_.sleep.enabled ? cfg_.sleep.shallow_idle_frac : 1.0;
}

PollCore::~PollCore()
{
    if (sleepEvent_.scheduled())
        eq_.deschedule(&sleepEvent_);
    if (finishEvent_.scheduled())
        eq_.deschedule(&finishEvent_);
}

void
PollCore::onWork()
{
    if (!busy_ && !stalled_)
        startNext();
}

void
PollCore::setStalled(bool stalled, double power_frac)
{
    if (stalled_ == stalled)
        return;
    stalled_ = stalled;
    stallFrac_ = power_frac;
    if (stalled) {
        if (sleepEvent_.scheduled())
            eq_.deschedule(&sleepEvent_);
        sleeping_ = false;
        // An in-flight packet still completes; finish() then parks
        // the core at the stall power level.
        if (!busy_)
            setPowerLevel(power_frac);
    } else {
        if (busy_) {
            setPowerLevel(1.0);
            return;
        }
        setPowerLevel(idleLevel());
        if (!ring_.empty())
            startNext();
        else
            goIdle();
    }
}

void
PollCore::setParked(bool parked)
{
    if (parked_ == parked)
        return;
    parked_ = parked;
    if (parked && !busy_ && ring_.empty()) {
        // Idle and empty: deep sleep right now, independent of the
        // SleepPolicy (the governor IS the sleep decision here). A
        // busy or backlogged core keeps serving; finish() drops it
        // into deep sleep once the ring drains.
        if (sleepEvent_.scheduled())
            eq_.deschedule(&sleepEvent_);
        sleeping_ = true;
        setPowerLevel(0.0);
    }
}

void
PollCore::forceWake()
{
    // A parked core stays asleep (the governor owns it: unpark first).
    if (stalled_ || busy_ || parked_)
        return;
    if (sleepEvent_.scheduled())
        eq_.deschedule(&sleepEvent_);
    if (sleeping_) {
        sleeping_ = false;
        setPowerLevel(idleLevel());
    }
    if (!ring_.empty())
        startNext();
    else
        goIdle();
}

void
PollCore::startNext()
{
    net::PacketPtr pkt = ring_.dequeue();
    if (pkt == nullptr) {
        goIdle();
        return;
    }

    Tick extra = 0;
    if (sleeping_) {
        sleeping_ = false;
        extra = cfg_.sleep.wake_latency;
    }
    if (sleepEvent_.scheduled())
        eq_.deschedule(&sleepEvent_);

    busy_ = true;
    setPowerLevel(1.0);
    busyTime_.set(1.0, eq_.now());
    busyMono_.set(1.0, eq_.now());
    obs::tracePacket(trace_, eq_.now(), pkt->id,
                     obs::TracePoint::ServiceStart, traceLane_,
                     traceCore_);

    // The real function work happens here; timing below is modeled.
    coherence::StateContext ctx(domain_, cfg_.node);
    fn_.process(*pkt, ctx);

    const Tick service =
        static_cast<Tick>(
            static_cast<double>(cfg_.profile.serviceTicks(pkt->size())) /
            (freqScale() * speedFactor_)) +
        ctx.latency() + extra;
    // One packet is in service at a time (guarded by busy_), so the
    // completion is an intrusive event instead of a fresh one-shot.
    inflight_ = std::move(pkt);
    eq_.scheduleIn(&finishEvent_, service);
}

void
PollCore::finish(net::PacketPtr pkt)
{
    ++frames_;
    bytes_ += pkt->size();
    obs::tracePacket(trace_, eq_.now(), pkt->id,
                     obs::TracePoint::ServiceEnd, traceLane_,
                     traceCore_);
    makeResponse(*pkt, cfg_.service_mac, cfg_.service_ip, cfg_.tag);
    tx_.accept(std::move(pkt));

    busy_ = false;
    busyTime_.set(0.0, eq_.now());
    busyMono_.set(0.0, eq_.now());
    if (stalled_) {
        setPowerLevel(stallFrac_);
        return;
    }
    if (!ring_.empty()) {
        startNext();
    } else if (parked_) {
        // Governor-parked and finally drained: deep sleep.
        sleeping_ = true;
        setPowerLevel(0.0);
    } else {
        setPowerLevel(idleLevel());
        goIdle();
    }
}

void
PollCore::goIdle()
{
    if (cfg_.sleep.enabled && !sleeping_ && !sleepEvent_.scheduled())
        eq_.scheduleIn(&sleepEvent_, cfg_.sleep.sleep_after);
}

double
PollCore::busySecondsNow() const
{
    return busyMono_.integral(eq_.now()) / static_cast<double>(kSec);
}

void
PollCore::maybeSleep()
{
    if (!busy_ && !stalled_ && ring_.empty() && !sleeping_) {
        sleeping_ = true;
        setPowerLevel(0.0);
    }
}

double
PollCore::utilization() const
{
    return busyTime_.average(eq_.now());
}

void
PollCore::resetStats()
{
    frames_ = 0;
    bytes_ = 0;
    busyTime_.resetAt(eq_.now());
}

Accelerator::Accelerator(EventQueue &eq, Config cfg,
                         funcs::NetworkFunction &fn,
                         coherence::CoherenceDomain *domain,
                         net::PacketSink &tx, PowerMeter &power)
    : eq_(eq), cfg_(std::move(cfg)), fn_(fn), domain_(domain), tx_(tx),
      power_(power), queue_(cfg_.queue_depth)
{
    queue_.setNotify([this] { pump(); });
    sleepEvent_.setCallback([this] {
        if (!busyPipeline_ && queue_.empty() && !deepSleep_) {
            deepSleep_ = true;
            setPowerLevel(0.0);
        }
    });
    setPowerLevel(idleLevel());
    if (cfg_.sleep.enabled)
        eq_.scheduleIn(&sleepEvent_, cfg_.sleep.sleep_after);
}

Accelerator::~Accelerator()
{
    if (sleepEvent_.scheduled())
        eq_.deschedule(&sleepEvent_);
}

double
Accelerator::activeBlockW() const
{
    // Feeding cores + the accelerator itself, treated as one block
    // whose duty cycle follows the pipeline. A failed accelerator
    // draws nothing while the software fallback keeps the cores hot.
    return cfg_.feed_power_w + (failed_ ? 0.0 : cfg_.profile.accel_w);
}

void
Accelerator::setPowerLevel(double frac)
{
    // Absolute-watt accounting: the block's base power changes when
    // the accelerator fails, so deltas must be taken against the
    // currently-charged watts, not the previous fraction.
    const double watts = frac * activeBlockW();
    power_.add(watts - currentW_);
    feedTw_.set(frac * cfg_.feed_power_w, eq_.now());
    accelTw_.set(frac * (failed_ ? 0.0 : cfg_.profile.accel_w),
                 eq_.now());
    currentW_ = watts;
    powerLevel_ = frac;
}

double
Accelerator::feedJoulesNow() const
{
    return feedTw_.integral(eq_.now()) / static_cast<double>(kSec);
}

double
Accelerator::accelJoulesNow() const
{
    return accelTw_.integral(eq_.now()) / static_cast<double>(kSec);
}

void
Accelerator::setFailed(bool failed)
{
    if (failed_ == failed)
        return;
    failed_ = failed;
    setPowerLevel(powerLevel_);   // rebase watts onto the new block power
}

double
Accelerator::idleLevel() const
{
    return cfg_.sleep.enabled ? cfg_.sleep.shallow_idle_frac : 1.0;
}

void
Accelerator::pump()
{
    // One packet occupies the serialization slot between pop and
    // slot-exit; the input queue backs up behind it, which is where
    // saturation drops and queueing delay come from.
    if (inSlot_)
        return;   // the slot-exit event will re-pump
    net::PacketPtr pkt = queue_.dequeue();
    if (pkt == nullptr)
        return;
    inSlot_ = true;
    obs::tracePacket(trace_, eq_.now(), pkt->id,
                     obs::TracePoint::ServiceStart, traceLane_);

    Tick extra = 0;
    if (!busyPipeline_) {
        busyPipeline_ = true;
        if (deepSleep_) {
            deepSleep_ = false;
            extra = cfg_.sleep.wake_latency;
        }
        if (sleepEvent_.scheduled())
            eq_.deschedule(&sleepEvent_);
        setPowerLevel(1.0);
    }

    // The real function work happens at pipeline entry; coherent
    // state accesses extend the slot occupancy just as they stall a
    // hardware pipeline.
    coherence::StateContext ctx(domain_, cfg_.node);
    fn_.process(*pkt, ctx);

    // Software fallback after a failure serializes at a fraction of
    // the accelerated rate on the feeding cores.
    const double rate = failed_
                            ? cfg_.profile.max_tp_gbps * cfg_.fallback_frac
                            : cfg_.profile.max_tp_gbps;
    const Tick ser =
        transferTicks(pkt->size(), rate) + ctx.latency() + extra;
    eq_.scheduleFnIn(
        [this, p = std::move(pkt)]() mutable {
            // Serialization slot free: the next packet can enter
            // while this one traverses the fixed pipeline latency
            // (software fallback has no hardware pipeline to cross).
            inSlot_ = false;
            eq_.scheduleFnIn(
                [this, q = std::move(p)]() mutable {
                    finish(std::move(q));
                },
                failed_ ? 0 : cfg_.profile.accel_latency);
            if (!queue_.empty()) {
                pump();
            } else {
                busyPipeline_ = false;
                setPowerLevel(idleLevel());
                if (cfg_.sleep.enabled && !sleepEvent_.scheduled())
                    eq_.scheduleIn(&sleepEvent_, cfg_.sleep.sleep_after);
            }
        },
        ser);
}

void
Accelerator::finish(net::PacketPtr pkt)
{
    ++frames_;
    bytes_ += pkt->size();
    obs::tracePacket(trace_, eq_.now(), pkt->id,
                     obs::TracePoint::ServiceEnd, traceLane_);
    makeResponse(*pkt, cfg_.service_mac, cfg_.service_ip,
                 failed_ ? cfg_.fallback_tag : cfg_.tag);
    tx_.accept(std::move(pkt));
}

void
Accelerator::resetStats()
{
    frames_ = 0;
    bytes_ = 0;
}

Processor::Processor(EventQueue &eq, Config cfg,
                     funcs::NetworkFunction &fn,
                     coherence::CoherenceDomain *domain,
                     net::PacketSink &tx)
    : eq_(eq), cfg_(std::move(cfg)), power_(eq)
{
    if (cfg_.profile.unit == funcs::ExecUnit::Accel) {
        Accelerator::Config ac;
        ac.profile = cfg_.profile;
        ac.node = cfg_.node;
        ac.tag = cfg_.node == coherence::NodeId::Snic
                     ? net::Processor::SnicAccel
                     : net::Processor::HostAccel;
        ac.service_mac = cfg_.service_mac;
        ac.service_ip = cfg_.service_ip;
        ac.sleep = cfg_.sleep;
        ac.fallback_frac = cfg_.accel_fallback_frac;
        ac.fallback_tag = cfg_.node == coherence::NodeId::Snic
                              ? net::Processor::SnicCpu
                              : net::Processor::HostCpu;
        // The polling cores that feed the accelerator burn power with
        // the same duty cycle as the pipeline.
        ac.feed_power_w = cfg_.profile.core_active_w * cfg_.cores;
        accel_ = std::make_unique<Accelerator>(eq, ac, fn, domain, tx,
                                               power_);
        return;
    }

    PollCore::Config cc;
    cc.profile = cfg_.profile;
    cc.sleep = cfg_.sleep;
    cc.freq_scale = cfg_.dvfs.enabled ? &freqScale_ : nullptr;
    cc.node = cfg_.node;
    cc.tag = cfg_.node == coherence::NodeId::Snic
                 ? net::Processor::SnicCpu
                 : net::Processor::HostCpu;
    cc.service_mac = cfg_.service_mac;
    cc.service_ip = cfg_.service_ip;

    if (cfg_.governor.enabled) {
        groupTable_ = std::make_unique<FlowGroupTable>(
            cfg_.governor.groups, cfg_.cores);
    }

    for (unsigned i = 0; i < cfg_.cores; ++i) {
        rings_.push_back(
            std::make_unique<nic::DpdkRing>(cfg_.ring_descriptors));
        cores_.push_back(std::make_unique<PollCore>(
            eq, cc, *rings_.back(), fn, domain, tx, power_));
        nic::DpdkRing *ring = rings_.back().get();
        PollCore *core = cores_.back().get();
        ring->setNotify([core] { core->onWork(); });
        if (groupTable_ != nullptr)
            groupTable_->addQueue(ring);
        else
            rss_.addQueue(ring);
    }

    if (groupTable_ != nullptr) {
        std::vector<PollCore *> gov_cores;
        std::vector<nic::DpdkRing *> gov_rings;
        gov_cores.reserve(cores_.size());
        gov_rings.reserve(rings_.size());
        for (const auto &c : cores_)
            gov_cores.push_back(c.get());
        for (const auto &r : rings_)
            gov_rings.push_back(r.get());
        governor_ = std::make_unique<CoreGovernor>(
            eq, cfg_.governor, *groupTable_, std::move(gov_cores),
            std::move(gov_rings));
    }

    if (cfg_.dvfs.enabled) {
        freqScale_ = cfg_.dvfs.min_scale;
        dvfsEvent_.setCallback([this] {
            const std::uint32_t occ = maxRingOccupancy();
            if (occ > cfg_.dvfs.occ_high)
                freqScale_ = std::min(1.0, freqScale_ + cfg_.dvfs.step);
            else if (occ < cfg_.dvfs.occ_low)
                freqScale_ = std::max(cfg_.dvfs.min_scale,
                                      freqScale_ - cfg_.dvfs.step);
            eq_.scheduleIn(&dvfsEvent_, cfg_.dvfs.epoch);
        });
        eq_.scheduleIn(&dvfsEvent_, cfg_.dvfs.epoch);
    }
}

Processor::~Processor()
{
    if (dvfsEvent_.scheduled())
        eq_.deschedule(&dvfsEvent_);
}

net::PacketSink &
Processor::input()
{
    if (accel_ != nullptr)
        return accel_->input();
    if (groupTable_ != nullptr)
        return *groupTable_;
    return rss_;
}

std::uint32_t
Processor::maxRingOccupancy() const
{
    if (accel_ != nullptr)
        return accel_->occupancy();
    std::uint32_t max_occ = 0;
    for (const auto &r : rings_)
        max_occ = std::max(max_occ, r->occupancy());
    return max_occ;
}

std::uint64_t
Processor::processedFrames() const
{
    if (accel_ != nullptr)
        return accel_->processedFrames();
    std::uint64_t n = 0;
    for (const auto &c : cores_)
        n += c->processedFrames();
    return n;
}

std::uint64_t
Processor::processedBytes() const
{
    if (accel_ != nullptr)
        return accel_->processedBytes();
    std::uint64_t n = 0;
    for (const auto &c : cores_)
        n += c->processedBytes();
    return n;
}

std::uint64_t
Processor::drops() const
{
    std::uint64_t n = accel_ != nullptr ? accel_->drops() : 0;
    for (const auto &r : rings_)
        n += r->drops();
    return n - statDropBase_;
}

double
Processor::cpuJoulesNow() const
{
    if (accel_ != nullptr)
        return accel_->feedJoulesNow();
    double j = 0.0;
    for (const auto &c : cores_)
        j += c->joulesNow();
    return j;
}

double
Processor::accelJoulesNow() const
{
    return accel_ != nullptr ? accel_->accelJoulesNow() : 0.0;
}

double
Processor::cpuCurrentW() const
{
    if (accel_ != nullptr)
        return accel_->feedCurrentW();
    // The shared meter carries exactly the per-core watts in CPU
    // mode, and reading it is O(1).
    return power_.currentW();
}

double
Processor::accelCurrentW() const
{
    return accel_ != nullptr ? accel_->accelCurrentW() : 0.0;
}

double
Processor::coreJoulesNow(unsigned idx) const
{
    return idx < cores_.size() ? cores_[idx]->joulesNow() : 0.0;
}

double
Processor::coreCurrentW(unsigned idx) const
{
    return idx < cores_.size() ? cores_[idx]->currentW() : 0.0;
}

unsigned
Processor::governorActiveCores() const
{
    return governor_ != nullptr ? governor_->activeCores() : cfg_.cores;
}

std::uint64_t
Processor::governorEpochs() const
{
    return governor_ != nullptr ? governor_->epochs() : 0;
}

std::uint64_t
Processor::governorRebalances() const
{
    return governor_ != nullptr ? governor_->rebalances() : 0;
}

std::uint64_t
Processor::governorMigrations() const
{
    return governor_ != nullptr ? governor_->migrations() : 0;
}

std::uint64_t
Processor::governorParks() const
{
    return governor_ != nullptr ? governor_->parks() : 0;
}

std::uint64_t
Processor::governorUnparks() const
{
    return governor_ != nullptr ? governor_->unparks() : 0;
}

unsigned
Processor::governorMinActive() const
{
    return governor_ != nullptr ? governor_->minActiveCores() : 0;
}

unsigned
Processor::governorMaxActive() const
{
    return governor_ != nullptr ? governor_->maxActiveCores() : 0;
}

void
Processor::setCoreStalled(unsigned idx, bool stalled, double power_frac)
{
    if (idx < cores_.size())
        cores_[idx]->setStalled(stalled, power_frac);
}

void
Processor::stallAll(bool stalled, double power_frac)
{
    for (const auto &c : cores_)
        c->setStalled(stalled, power_frac);
}

void
Processor::fail()
{
    failed_ = true;
    if (accel_ != nullptr)
        accel_->setDead(true);
    else
        stallAll(true, 0.0);
}

void
Processor::restore()
{
    failed_ = false;
    if (accel_ != nullptr)
        accel_->setDead(false);
    else
        stallAll(false);
}

unsigned
Processor::aliveCores() const
{
    if (accel_ != nullptr)
        return failed_ ? 0 : cfg_.cores;
    unsigned n = 0;
    for (const auto &c : cores_)
        if (!c->stalled())
            ++n;
    return n;
}

bool
Processor::alive() const
{
    if (accel_ != nullptr)
        return !failed_;
    return aliveCores() > 0;
}

void
Processor::setSpeedFactor(double f)
{
    for (const auto &c : cores_)
        c->setSpeedFactor(f);
}

void
Processor::forceWakeAll()
{
    for (const auto &c : cores_)
        c->forceWake();
}

void
Processor::failAccelerator()
{
    if (accel_ != nullptr)
        accel_->setFailed(true);
}

void
Processor::repairAccelerator()
{
    if (accel_ != nullptr)
        accel_->setFailed(false);
}

bool
Processor::accelDegraded() const
{
    return accel_ != nullptr && accel_->accelFailed();
}

void
Processor::attachObs(obs::StatsRegistry *reg, obs::PacketTracer *tracer,
                     const std::string &prefix, std::uint8_t ring_lane,
                     std::uint8_t core_lane, bool series)
{
    if (tracer != nullptr) {
        if (accel_ != nullptr)
            accel_->setTrace(tracer, ring_lane, core_lane);
        for (auto &r : rings_)
            r->setTrace(tracer, ring_lane, &eq_);
        for (std::size_t i = 0; i < cores_.size(); ++i)
            cores_[i]->setTrace(tracer, core_lane,
                                static_cast<std::uint32_t>(i));
    }
    if (reg == nullptr)
        return;

    reg->fnCounter(prefix + ".frames",
                   [this] { return processedFrames(); });
    reg->fnCounter(prefix + ".bytes",
                   [this] { return processedBytes(); });
    reg->fnCounter(prefix + ".drops", [this] { return drops(); });

    reg->probe(prefix + ".dyn_power_w",
               [this] { return power_.currentW(); },
               obs::StatsRegistry::ProbeOptions{series, 0.01, 1000.0, 16});

    if (accel_ != nullptr) {
        reg->probe(
            prefix + ".accel.occupancy",
            [this] { return static_cast<double>(accel_->occupancy()); },
            obs::StatsRegistry::ProbeOptions{series, 1.0, 4096.0, 16});
        return;
    }

    if (cfg_.dvfs.enabled) {
        reg->probe(prefix + ".dvfs_scale",
                   [this] { return freqScale_; },
                   obs::StatsRegistry::ProbeOptions{series, 0.1, 1.0, 16});
    }
    if (governor_ != nullptr) {
        reg->probe(
            prefix + ".governor.active_cores",
            [this] {
                return static_cast<double>(governor_->activeCores());
            },
            obs::StatsRegistry::ProbeOptions{
                series, 1.0, static_cast<double>(cfg_.cores), 16});
    }
    const double ring_hi =
        static_cast<double>(std::max<std::uint32_t>(
            cfg_.ring_descriptors, 2));
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const std::string n = std::to_string(i);
        PollCore *core = cores_[i].get();
        nic::DpdkRing *ring = rings_[i].get();
        reg->probe(prefix + ".core" + n + ".busy_frac",
                   [core] { return core->utilization(); },
                   obs::StatsRegistry::ProbeOptions{series, 0.001, 1.0,
                                                    16});
        reg->probe(
            prefix + ".ring" + n + ".occupancy",
            [ring] { return static_cast<double>(ring->occupancy()); },
            obs::StatsRegistry::ProbeOptions{series, 1.0, ring_hi, 16});
    }
}

void
Processor::resetStats()
{
    power_.reset();
    if (accel_ != nullptr) {
        accel_->resetStats();
        statDropBase_ = accel_->drops();
    } else {
        statDropBase_ = 0;
    }
    for (const auto &c : cores_)
        c->resetStats();
    if (governor_ != nullptr)
        governor_->resetStats();
    std::uint64_t ring_drops = 0;
    for (const auto &r : rings_)
        ring_drops += r->drops();
    statDropBase_ += ring_drops;
}

} // namespace halsim::proc
