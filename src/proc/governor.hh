/**
 * @file
 * Adaptive core-scaling governor (ROADMAP item 3): RSS++-style
 * flow-group-to-core indirection rebalanced per epoch, plus
 * COREIDLE-style core consolidation so idle cores fall through the
 * sleep path into deep sleep.
 *
 * Policy/mechanism split:
 *  - FlowGroupTable is the *mechanism*: a splitmix64-hashed
 *    flow-group indirection table sitting where RssDistributor used
 *    to; steering changes are O(1) table writes, never packet moves.
 *  - CoreGovernor is the *policy*: a deterministic, epoch-driven
 *    controller that (a) rebalances groups from the most- to the
 *    least-loaded active core (load = busy cycles, then queue
 *    occupancy, the RSS++ signal order) moving the fewest groups
 *    that close the gap, and (b) shrinks/grows the active-core set
 *    under hysteresis (low/high busy-fraction watermarks with a
 *    min-dwell) — parked cores drain their rings and drop to zero
 *    watts; scale-up wakes them through the existing forceWake path.
 *
 * The per-epoch planning steps are pure free functions
 * (planConsolidation / planRebalance) so tests can check the
 * governor against an exact reference without running a simulation.
 */

#ifndef HALSIM_PROC_GOVERNOR_HH
#define HALSIM_PROC_GOVERNOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "net/packet_batch.hh"
#include "nic/dpdk_ring.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"

namespace halsim::obs {
class SpanTracer;
class FlightRecorder;
} // namespace halsim::obs

namespace halsim::proc {

class PollCore;

/**
 * Core-scaling governor policy knobs. One epoch does at most one
 * consolidation action (park one / unpark one / unpark all) plus one
 * rebalance pass over the active set.
 */
struct GovernorPolicy
{
    bool enabled = false;
    Tick epoch = 200 * kUs;           //!< governor period
    std::uint32_t groups = 256;       //!< indirection-table entries
    double busy_low = 0.25;           //!< park below this avg busy frac
    double busy_high = 0.85;          //!< unpark one above this
    /** Emergency pressure valve: any ring above this occupancy
     *  unparks every core at once (burst p99 protection). */
    std::uint32_t occ_unpark = 32;
    /** Epochs the active set must dwell before the next park. */
    std::uint32_t min_dwell_epochs = 5;
    unsigned min_active_cores = 1;
    /** Rebalance when max-min active-core load exceeds this. */
    double imbalance_threshold = 0.10;
};

/**
 * The flow-group indirection table (RSS++ / fastclick
 * DeviceBalancer): flowHash -> splitmix64 -> group -> core ring.
 * Replaces the static modulo spread of RssDistributor when the
 * governor is armed. Tracks per-group packet counts per epoch so the
 * governor can estimate how much load a group move transfers.
 */
class FlowGroupTable : public net::PacketSink
{
  public:
    FlowGroupTable(std::uint32_t groups, std::uint32_t cores);

    /** Register core @p ring; rings index in registration order. */
    void addQueue(nic::DpdkRing *ring) { queues_.push_back(ring); }

    // halint: hotpath
    void
    accept(net::PacketPtr pkt) override
    {
        if (queues_.empty())
            return;
        const std::uint32_t g = groupOf(pkt->flowHash);
        ++groupPackets_[g];
        queues_[groupCore_[g]]->accept(std::move(pkt));
    }

    // halint: hotpath
    void
    acceptBatch(net::PacketBatch &&batch) override
    {
        while (!batch.empty())
            FlowGroupTable::accept(batch.takeFront());
    }

    /** splitmix64 finalizer over the flow hash, mod the group count. */
    std::uint32_t groupOf(std::uint32_t flow_hash) const;

    std::uint32_t groupCount() const
    {
        return static_cast<std::uint32_t>(groupCore_.size());
    }

    std::uint32_t coreOfGroup(std::uint32_t group) const
    {
        return groupCore_[group];
    }

    /** Steer @p group to @p core (an O(1) indirection write). */
    void assign(std::uint32_t group, std::uint32_t core)
    {
        groupCore_[group] = core;
    }

    /** Packets accepted into @p group since the last epoch reset. */
    std::uint64_t groupPackets(std::uint32_t group) const
    {
        return groupPackets_[group];
    }

    const std::vector<std::uint64_t> &epochPackets() const
    {
        return groupPackets_;
    }

    /** Zero the per-group packet counters (end of a governor epoch). */
    void resetEpoch();

  private:
    std::vector<nic::DpdkRing *> queues_;
    std::vector<std::uint32_t> groupCore_;
    std::vector<std::uint64_t> groupPackets_;
};

// --- pure per-epoch planning (exact-reference testable) --------------

/** One consolidation decision. */
enum class GovernorAction : std::uint8_t
{
    None,
    Park,       //!< park the highest-index active core
    UnparkOne,  //!< wake the lowest-index parked core
    UnparkAll,  //!< occupancy pressure: wake everything at once
};

/**
 * COREIDLE consolidation with hysteresis. @p avg_busy is the mean
 * busy fraction over *active* cores this epoch, @p max_occ the
 * maximum ring occupancy over active cores, @p active / @p total the
 * active and configured core counts, @p dwell the epochs since the
 * active set last changed.
 */
GovernorAction planConsolidation(const GovernorPolicy &cfg,
                                 double avg_busy, std::uint32_t max_occ,
                                 unsigned active, unsigned total,
                                 std::uint32_t dwell);

/** One group steering change decided by a rebalance pass. */
struct GroupMove
{
    std::uint32_t group;
    std::uint32_t from;
    std::uint32_t to;
};

/**
 * RSS++ rebalance: when the spread between the most- and
 * least-loaded *active* cores exceeds cfg.imbalance_threshold, move
 * the fewest groups (largest packet counts first, ascending group
 * index on ties) from the donor to the receiver until half the gap
 * is covered, estimating each group's load share from its epoch
 * packet count. The donor always keeps at least one group.
 *
 * @p load       per-core load (busy fraction + occupancy/capacity)
 * @p active     per-core active mask (parked cores are skipped)
 * @p group_core current group->core table
 * @p group_pkts per-group packets this epoch
 */
std::vector<GroupMove>
planRebalance(const GovernorPolicy &cfg, const std::vector<double> &load,
              const std::vector<bool> &active,
              const std::vector<std::uint32_t> &group_core,
              const std::vector<std::uint64_t> &group_pkts);

/**
 * The epoch-driven governor attached to one Processor's poll cores.
 * Runs on the owning processor's event queue (its wheel in
 * partitioned runs), so governor-armed runs stay bit-identical
 * across engine thread counts.
 */
class CoreGovernor
{
  public:
    /** Park/unpark storm trigger: this many actions within the last
     *  kStormWindow epochs fires the flight recorder (thrash, not
     *  adaptation). */
    static constexpr std::uint32_t kStormWindow = 8;
    static constexpr std::uint32_t kStormThreshold = 4;

    CoreGovernor(EventQueue &eq, GovernorPolicy cfg,
                 FlowGroupTable &table,
                 std::vector<PollCore *> cores,
                 std::vector<nic::DpdkRing *> rings);
    ~CoreGovernor();

    CoreGovernor(const CoreGovernor &) = delete;
    CoreGovernor &operator=(const CoreGovernor &) = delete;

    /** Attach span/flight-recorder sinks (null = off): every epoch
     *  emits a GovernorEpoch mark, and a park/unpark storm fires the
     *  Gov trigger. Read-only observers; see DESIGN.md §16. */
    void attachSpans(obs::SpanTracer *spans, obs::FlightRecorder *fr,
                     std::uint8_t lane);

    unsigned activeCores() const { return active_; }

    bool coreActive(unsigned idx) const
    {
        return idx < parked_.size() && !parked_[idx];
    }

    // --- per-epoch counters (reset at the warmup boundary) ----------
    std::uint64_t epochs() const { return epochs_; }
    std::uint64_t rebalances() const { return rebalances_; }
    std::uint64_t migrations() const { return migrations_; }
    std::uint64_t parks() const { return parks_; }
    std::uint64_t unparks() const { return unparks_; }

    /** Extremes of the active-core count observed since reset. */
    unsigned minActiveCores() const { return minActive_; }
    unsigned maxActiveCores() const { return maxActive_; }

    void resetStats();

  private:
    void tick();
    void park(unsigned idx);
    void unpark(unsigned idx);
    /** Reassign every group on @p idx round-robin over active cores. */
    void evacuate(unsigned idx);

    EventQueue &eq_;
    GovernorPolicy cfg_;
    FlowGroupTable &table_;
    std::vector<PollCore *> cores_;
    std::vector<nic::DpdkRing *> rings_;

    CallbackEvent tickEvent_;
    std::vector<bool> parked_;
    std::vector<double> lastBusySeconds_;
    unsigned active_;
    std::uint32_t dwell_ = 0;

    std::uint64_t epochs_ = 0;
    std::uint64_t rebalances_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t parks_ = 0;
    std::uint64_t unparks_ = 0;
    unsigned minActive_;
    unsigned maxActive_;

    // Span/flight-recorder sinks (null = off) and the sliding
    // park/unpark storm window.
    obs::SpanTracer *spans_ = nullptr;
    obs::FlightRecorder *fr_ = nullptr;
    std::uint8_t spanLane_ = 0;
    std::array<std::uint32_t, kStormWindow> stormActs_{};
    std::size_t stormIdx_ = 0;
};

} // namespace halsim::proc

#endif // HALSIM_PROC_GOVERNOR_HH
