#include "proc/governor.hh"

#include <algorithm>
#include <numeric>

#include "obs/hooks.hh"
#include "proc/processor.hh"

namespace halsim::proc {

std::vector<std::string>
PowerPolicy::validate() const
{
    std::vector<std::string> errors;
    auto fail = [&errors](std::string msg) {
        errors.push_back(std::move(msg));
    };

    if (host_sleep.enabled) {
        if (host_sleep.sleep_after <= 0)
            fail("power.host_sleep.sleep_after must be > 0");
        if (host_sleep.shallow_idle_frac < 0.0 ||
            host_sleep.shallow_idle_frac > 1.0) {
            fail("power.host_sleep.shallow_idle_frac must be in "
                 "[0, 1], got " +
                 std::to_string(host_sleep.shallow_idle_frac));
        }
    }

    if (snic_dvfs.enabled) {
        if (snic_dvfs.epoch <= 0)
            fail("power.snic_dvfs.epoch must be > 0");
        if (!(snic_dvfs.min_scale > 0.0 && snic_dvfs.min_scale <= 1.0))
            fail("power.snic_dvfs.min_scale must be in (0, 1], got " +
                 std::to_string(snic_dvfs.min_scale));
        if (snic_dvfs.step <= 0.0)
            fail("power.snic_dvfs.step must be > 0");
        if (snic_dvfs.occ_low > snic_dvfs.occ_high)
            fail("power.snic_dvfs.occ_low (" +
                 std::to_string(snic_dvfs.occ_low) +
                 ") must be <= occ_high (" +
                 std::to_string(snic_dvfs.occ_high) + ")");
    }

    if (governor.enabled) {
        if (governor.epoch <= 0)
            fail("power.governor.epoch must be > 0");
        if (governor.groups == 0)
            fail("power.governor.groups must be > 0");
        if (!(governor.busy_low >= 0.0 &&
              governor.busy_low < governor.busy_high &&
              governor.busy_high <= 1.0)) {
            fail("power.governor watermarks must satisfy 0 <= "
                 "busy_low (" +
                 std::to_string(governor.busy_low) +
                 ") < busy_high (" +
                 std::to_string(governor.busy_high) + ") <= 1");
        }
        if (governor.min_active_cores == 0)
            fail("power.governor.min_active_cores must be >= 1");
        if (governor.imbalance_threshold < 0.0)
            fail("power.governor.imbalance_threshold must be >= 0");
    }

    return errors;
}

FlowGroupTable::FlowGroupTable(std::uint32_t groups, std::uint32_t cores)
    : groupCore_(groups == 0 ? 1 : groups),
      groupPackets_(groups == 0 ? 1 : groups, 0)
{
    // Initial spread: groups striped round-robin across the cores,
    // matching what RssDistributor's modulo would do group-wise.
    const std::uint32_t n = cores == 0 ? 1 : cores;
    for (std::uint32_t g = 0; g < groupCore_.size(); ++g)
        groupCore_[g] = g % n;
}

std::uint32_t
FlowGroupTable::groupOf(std::uint32_t flow_hash) const
{
    // splitmix64 finalizer: decorrelates the group index from the
    // RSS queue index the plain modulo would pick, so group moves
    // shift load in fine grains.
    std::uint64_t z =
        static_cast<std::uint64_t>(flow_hash) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<std::uint32_t>(
        z % static_cast<std::uint64_t>(groupCore_.size()));
}

void
FlowGroupTable::resetEpoch()
{
    std::fill(groupPackets_.begin(), groupPackets_.end(), 0);
}

GovernorAction
planConsolidation(const GovernorPolicy &cfg, double avg_busy,
                  std::uint32_t max_occ, unsigned active, unsigned total,
                  std::uint32_t dwell)
{
    // Pressure valve first: a backed-up ring costs p99 immediately,
    // so it overrides the hysteresis entirely.
    if (max_occ >= cfg.occ_unpark && active < total)
        return GovernorAction::UnparkAll;
    if (avg_busy > cfg.busy_high && active < total)
        return GovernorAction::UnparkOne;
    if (avg_busy < cfg.busy_low && active > cfg.min_active_cores &&
        dwell >= cfg.min_dwell_epochs)
        return GovernorAction::Park;
    return GovernorAction::None;
}

std::vector<GroupMove>
planRebalance(const GovernorPolicy &cfg, const std::vector<double> &load,
              const std::vector<bool> &active,
              const std::vector<std::uint32_t> &group_core,
              const std::vector<std::uint64_t> &group_pkts)
{
    std::vector<GroupMove> moves;

    // Donor = most-loaded active core, receiver = least-loaded;
    // ascending index breaks ties so the plan is deterministic.
    int donor = -1, receiver = -1;
    for (std::size_t i = 0; i < load.size(); ++i) {
        if (i < active.size() && !active[i])
            continue;
        if (donor < 0 || load[i] > load[static_cast<std::size_t>(donor)])
            donor = static_cast<int>(i);
        if (receiver < 0 ||
            load[i] < load[static_cast<std::size_t>(receiver)])
            receiver = static_cast<int>(i);
    }
    if (donor < 0 || receiver < 0 || donor == receiver)
        return moves;
    const double gap = load[static_cast<std::size_t>(donor)] -
                       load[static_cast<std::size_t>(receiver)];
    if (gap <= cfg.imbalance_threshold)
        return moves;

    // The donor's groups, with its epoch packet total for load
    // apportioning.
    std::vector<std::uint32_t> donor_groups;
    std::uint64_t donor_pkts = 0;
    for (std::uint32_t g = 0; g < group_core.size(); ++g) {
        if (group_core[g] == static_cast<std::uint32_t>(donor)) {
            donor_groups.push_back(g);
            donor_pkts += group_pkts[g];
        }
    }
    if (donor_groups.size() <= 1 || donor_pkts == 0)
        return moves;

    // Fewest groups that cover half the gap: biggest packet counts
    // first (stable on index for determinism).
    std::stable_sort(donor_groups.begin(), donor_groups.end(),
                     [&group_pkts](std::uint32_t a, std::uint32_t b) {
                         return group_pkts[a] > group_pkts[b];
                     });
    const double donor_load = load[static_cast<std::size_t>(donor)];
    const double target = gap / 2.0;
    double transferred = 0.0;
    for (std::uint32_t g : donor_groups) {
        if (transferred >= target)
            break;
        if (moves.size() + 1 >= donor_groups.size())
            break;   // the donor keeps at least one group
        moves.push_back({g, static_cast<std::uint32_t>(donor),
                         static_cast<std::uint32_t>(receiver)});
        transferred += donor_load * static_cast<double>(group_pkts[g]) /
                       static_cast<double>(donor_pkts);
    }
    return moves;
}

CoreGovernor::CoreGovernor(EventQueue &eq, GovernorPolicy cfg,
                           FlowGroupTable &table,
                           std::vector<PollCore *> cores,
                           std::vector<nic::DpdkRing *> rings)
    : eq_(eq), cfg_(cfg), table_(table), cores_(std::move(cores)),
      rings_(std::move(rings)),
      parked_(cores_.size(), false),
      lastBusySeconds_(cores_.size(), 0.0),
      active_(static_cast<unsigned>(cores_.size())),
      minActive_(active_), maxActive_(active_)
{
    tickEvent_.setCallback([this] { tick(); });
    eq_.scheduleIn(&tickEvent_, cfg_.epoch);
}

CoreGovernor::~CoreGovernor()
{
    if (tickEvent_.scheduled())
        eq_.deschedule(&tickEvent_);
}

void
CoreGovernor::resetStats()
{
    epochs_ = 0;
    rebalances_ = 0;
    migrations_ = 0;
    parks_ = 0;
    unparks_ = 0;
    minActive_ = active_;
    maxActive_ = active_;
    stormActs_.fill(0);
    stormIdx_ = 0;
}

void
CoreGovernor::attachSpans(obs::SpanTracer *spans,
                          obs::FlightRecorder *fr, std::uint8_t lane)
{
    spans_ = spans;
    fr_ = fr;
    spanLane_ = lane;
}

void
CoreGovernor::park(unsigned idx)
{
    parked_[idx] = true;
    --active_;
    ++parks_;
    evacuate(idx);
    cores_[idx]->setParked(true);
}

void
CoreGovernor::unpark(unsigned idx)
{
    parked_[idx] = false;
    ++active_;
    ++unparks_;
    // Wake through the forceWake path: no per-packet wake penalty on
    // scale-up (the governor anticipated the load).
    cores_[idx]->setParked(false);
    cores_[idx]->forceWake();
}

void
CoreGovernor::evacuate(unsigned idx)
{
    // Round-robin the parked core's groups over the remaining active
    // cores (ascending group and core index: deterministic); the
    // next rebalance pass smooths any residual imbalance.
    std::vector<std::uint32_t> targets;
    for (unsigned c = 0; c < parked_.size(); ++c)
        if (!parked_[c])
            targets.push_back(c);
    if (targets.empty())
        return;
    std::size_t next = 0;
    for (std::uint32_t g = 0; g < table_.groupCount(); ++g) {
        if (table_.coreOfGroup(g) != idx)
            continue;
        table_.assign(g, targets[next]);
        next = (next + 1) % targets.size();
        ++migrations_;
    }
}

void
CoreGovernor::tick()
{
    ++epochs_;
    const std::uint64_t actsBefore = parks_ + unparks_;
    const double epoch_s =
        static_cast<double>(cfg_.epoch) / static_cast<double>(kSec);

    // Per-core busy fraction this epoch (monotone busy-seconds
    // differencing: warmup resets cannot bias it) and the RSS++
    // cycles-then-queue load signal.
    std::vector<double> load(cores_.size(), 0.0);
    std::vector<bool> active(cores_.size());
    double busy_sum = 0.0;
    std::uint32_t max_occ = 0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const double busy_s = cores_[i]->busySecondsNow();
        const double busy =
            epoch_s > 0.0
                ? std::min(1.0, (busy_s - lastBusySeconds_[i]) / epoch_s)
                : 0.0;
        lastBusySeconds_[i] = busy_s;
        const std::uint32_t occ = rings_[i]->occupancy();
        const double cap =
            static_cast<double>(std::max<std::uint32_t>(
                rings_[i]->capacity(), 1));
        load[i] = busy + static_cast<double>(occ) / cap;
        active[i] = !parked_[i];
        if (!parked_[i]) {
            busy_sum += busy;
            max_occ = std::max(max_occ, occ);
        }
    }
    const double avg_busy =
        active_ > 0 ? busy_sum / static_cast<double>(active_) : 0.0;

    // --- COREIDLE consolidation --------------------------------------
    const GovernorAction action = planConsolidation(
        cfg_, avg_busy, max_occ, active_,
        static_cast<unsigned>(cores_.size()), dwell_);
    switch (action) {
      case GovernorAction::UnparkAll:
        for (unsigned i = 0; i < parked_.size(); ++i)
            if (parked_[i])
                unpark(i);
        dwell_ = 0;
        break;
      case GovernorAction::UnparkOne:
        for (unsigned i = 0; i < parked_.size(); ++i) {
            if (parked_[i]) {
                unpark(i);
                break;
            }
        }
        dwell_ = 0;
        break;
      case GovernorAction::Park:
        for (unsigned i = static_cast<unsigned>(parked_.size()); i > 0;
             --i) {
            if (!parked_[i - 1]) {
                park(i - 1);
                break;
            }
        }
        dwell_ = 0;
        break;
      case GovernorAction::None:
        ++dwell_;
        break;
    }

    // --- RSS++ rebalance over the (possibly changed) active set ------
    for (std::size_t i = 0; i < active.size(); ++i)
        active[i] = !parked_[i];
    const std::vector<std::uint32_t> group_core = [this] {
        std::vector<std::uint32_t> gc(table_.groupCount());
        for (std::uint32_t g = 0; g < table_.groupCount(); ++g)
            gc[g] = table_.coreOfGroup(g);
        return gc;
    }();
    const std::vector<GroupMove> moves = planRebalance(
        cfg_, load, active, group_core, table_.epochPackets());
    if (!moves.empty()) {
        ++rebalances_;
        migrations_ += moves.size();
        for (const GroupMove &m : moves)
            table_.assign(m.group, m.to);
    }

    table_.resetEpoch();
    minActive_ = std::min(minActive_, active_);
    maxActive_ = std::max(maxActive_, active_);

    // Epoch decision span + park/unpark storm detection (pure
    // observers; no-ops unless spans/flight recorder are attached).
    obs::spanMark(spans_, fr_, eq_.now(), obs::SpanKind::GovernorEpoch,
                  spanLane_, static_cast<std::uint32_t>(action),
                  active_);
    const std::uint64_t acts = parks_ + unparks_;
    stormActs_[stormIdx_] =
        static_cast<std::uint32_t>(acts - actsBefore);
    stormIdx_ = (stormIdx_ + 1) % stormActs_.size();
    std::uint32_t recent = 0;
    for (std::uint32_t a : stormActs_)
        recent += a;
    if (recent >= kStormThreshold) {
        obs::frTrigger(fr_, eq_.now(), obs::FrTrigger::Gov, recent);
        stormActs_.fill(0);
    }

    eq_.scheduleIn(&tickEvent_, cfg_.epoch);
}

} // namespace halsim::proc
