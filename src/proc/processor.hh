/**
 * @file
 * Processor models: DPDK poll-mode CPU cores, accelerator pipelines,
 * sleep-state management, and dynamic-power accounting. One Processor
 * instance stands for "the SNIC processor" or "the host processor" of
 * the paper: N polling cores fed by RSS-spread descriptor rings, or
 * an accelerator pipeline for the hardware-accelerated functions,
 * with per-function service costs from the calibration tables.
 */

#ifndef HALSIM_PROC_PROCESSOR_HH
#define HALSIM_PROC_PROCESSOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coherence/domain.hh"
#include "funcs/calibration.hh"
#include "funcs/function.hh"
#include "net/packet.hh"
#include "nic/dpdk_ring.hh"
#include "nic/eswitch.hh"
#include "obs/hooks.hh"
#include "proc/governor.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace halsim::obs {
class StatsRegistry;
} // namespace halsim::obs

namespace halsim::proc {

/**
 * DPDK power-management policy (§V-B): cores enter a sleep state
 * after an idle interval and pay a wake-up penalty on the next
 * packet. The paper enables this for the host CPU under HAL to stop
 * busy-waiting from burning power at low rates.
 */
struct SleepPolicy
{
    bool enabled = false;
    Tick sleep_after = 20 * kUs;
    Tick wake_latency = 5 * kUs;
    /**
     * Power fraction while waiting between packets with the power
     * API active (umonitor/umwait pauses the core instead of
     * spinning); deep sleep after sleep_after drops to zero, at the
     * cost of wake_latency. Without the policy a polling core burns
     * full power at all times.
     */
    double shallow_idle_frac = 0.25;
};

/**
 * Dynamic voltage/frequency scaling policy for the SNIC CPU (§VIII
 * "Impact of SNIC processor's DVFS on the effectiveness of LBP").
 * A simple occupancy-driven governor: scale frequency down while the
 * rings stay near-empty, up when they back up. Service time scales
 * as 1/f, dynamic power as f^2 (voltage tracks frequency).
 */
struct DvfsPolicy
{
    bool enabled = false;
    Tick epoch = 500 * kUs;
    double min_scale = 0.4;
    double step = 0.2;
    std::uint32_t occ_high = 16;   //!< scale up above this occupancy
    std::uint32_t occ_low = 2;     //!< scale down below this occupancy
};

/**
 * The server's complete power-management policy, grouped in one
 * sub-struct: host-CPU sleep states (§V-B), SNIC-CPU DVFS (§VIII),
 * and the adaptive core-scaling governor (ROADMAP item 3). One
 * validate() reports every violation in a single pass; ServerConfig
 * splices the messages into its own report.
 */
struct PowerPolicy
{
    /** Host-CPU sleep policy; applied under HAL mode (the paper
     *  enables the DPDK power API on the host side). */
    SleepPolicy host_sleep{true, 20 * kUs, 5 * kUs};

    /** Occupancy-driven DVFS on the SNIC CPU (off by default). */
    DvfsPolicy snic_dvfs;

    /** Core-scaling governor, armed on both processors when enabled. */
    GovernorPolicy governor;

    /** Every violation in one pass; empty means valid. */
    std::vector<std::string> validate() const;
};

/**
 * Aggregated dynamic-power meter (W) for one processor.
 */
class PowerMeter
{
  public:
    explicit PowerMeter(EventQueue &eq) : eq_(eq) {}

    /** Add (or with negative @p dw, remove) a power contribution. */
    void add(double dw) { tw_.set(tw_.value() + dw, eq_.now()); }

    double currentW() const { return tw_.value(); }

    /** Time-averaged watts since the last reset. */
    double averageW() const { return tw_.average(eq_.now()); }

    /** Integrated energy since the last reset, joules. */
    double
    joules() const
    {
        return tw_.integral(eq_.now()) / static_cast<double>(kSec);
    }

    void reset() { tw_.resetAt(eq_.now()); }

  private:
    EventQueue &eq_;
    TimeWeighted tw_;
};

/**
 * One poll-mode core: services its descriptor ring in FIFO order,
 * executing the network function for real and charging the
 * calibrated service time plus any coherent-state latency.
 */
class PollCore
{
  public:
    struct Config
    {
        funcs::FunctionProfile profile;
        SleepPolicy sleep;
        coherence::NodeId node = coherence::NodeId::Snic;
        net::Processor tag = net::Processor::SnicCpu;
        net::MacAddr service_mac;
        net::Ipv4Addr service_ip;
        /** Shared frequency scale set by the DVFS governor (null =
         *  fixed nominal frequency). */
        const double *freq_scale = nullptr;
    };

    PollCore(EventQueue &eq, Config cfg, nic::DpdkRing &ring,
             funcs::NetworkFunction &fn,
             coherence::CoherenceDomain *domain, net::PacketSink &tx,
             PowerMeter &power);
    ~PollCore();

    PollCore(const PollCore &) = delete;
    PollCore &operator=(const PollCore &) = delete;

    /** Ring notification: new packet while the ring was empty. */
    void onWork();

    /**
     * Fault hook: a stalled core stops servicing its ring (the ring
     * backs up and tail-drops) while drawing @p power_frac of active
     * power — 1.0 models a busy-wait hang, 0.0 a fail-stop crash. An
     * in-flight packet still completes. Unstalling resumes from the
     * ring backlog.
     */
    void setStalled(bool stalled, double power_frac = 1.0);

    bool stalled() const { return stalled_; }

    /** Fault hook: run at @p f of nominal speed (0 < f; 1 = nominal). */
    void
    setSpeedFactor(double f)
    {
        speedFactor_ = f > 0.0 ? f : 1.0;
    }

    /**
     * Recovery hook: wake a sleeping core immediately, without the
     * per-packet wake penalty — the watchdog uses this when failover
     * redirects the full load at a processor whose cores sleep.
     */
    void forceWake();

    /**
     * Governor hook (COREIDLE mechanism): a parked core drops into
     * deep sleep — zero watts — as soon as it is idle with an empty
     * ring, even without a SleepPolicy; a busy or backlogged core
     * drains its ring first, then sleeps. Stray packets still wake
     * it (with the wake penalty), so nothing is ever stranded.
     * Unparking is completed by the governor's forceWake() call.
     */
    void setParked(bool parked);

    bool parked() const { return parked_; }

    std::uint64_t processedFrames() const { return frames_; }
    std::uint64_t processedBytes() const { return bytes_; }
    bool sleeping() const { return sleeping_; }

    /** Fraction of time spent actively processing since reset. */
    double utilization() const;

    /**
     * Integrated dynamic energy of this core since construction,
     * joules. Monotone (never reset); window accounting is done by
     * snapshot differencing in the energy ledger, so warmup resets
     * cannot bias it.
     */
    double joulesNow() const;

    /**
     * Busy time integrated since construction, seconds. Monotone
     * (never reset, unlike utilization()'s window), so the governor
     * can difference it per epoch across the warmup reset.
     */
    double busySecondsNow() const;

    /** Absolute watts currently charged by this core. */
    double currentW() const { return currentW_; }

    /** Attach the packet tracer: dequeue-to-service records
     *  ServiceStart and completion ServiceEnd, arg = @p core index. */
    void
    setTrace(obs::PacketTracer *t, std::uint8_t lane, std::uint32_t core)
    {
        trace_ = t;
        traceLane_ = lane;
        traceCore_ = core;
    }

    void resetStats();

  private:
    void startNext();
    void finish(net::PacketPtr pkt);
    void goIdle();
    void maybeSleep();

    EventQueue &eq_;
    Config cfg_;
    nic::DpdkRing &ring_;
    funcs::NetworkFunction &fn_;
    coherence::CoherenceDomain *domain_;
    net::PacketSink &tx_;
    PowerMeter &power_;

    CallbackEvent sleepEvent_;
    /** Service completion for the single in-flight packet: intrusive
     *  (recycled in place) instead of a per-service one-shot. */
    CallbackEvent finishEvent_;
    net::PacketPtr inflight_;
    bool busy_ = false;
    bool sleeping_ = false;    //!< deep sleep (wake penalty applies)
    bool parked_ = false;      //!< governor-parked (consolidation)
    bool stalled_ = false;     //!< fault-injected hang/crash
    double stallFrac_ = 1.0;   //!< power fraction while stalled
    double speedFactor_ = 1.0; //!< fault-injected slowdown (1 = nominal)
    double powerLevel_ = 0.0;  //!< duty-cycle fraction
    double currentW_ = 0.0;    //!< absolute watts currently charged
    std::uint64_t frames_ = 0;
    std::uint64_t bytes_ = 0;
    TimeWeighted busyTime_;   //!< 1.0 while processing, for utilization
    TimeWeighted busyMono_;   //!< monotone busy mirror (governor signal)
    TimeWeighted wattsTw_;    //!< per-core watts mirror (energy ledger)

    // Observability (null/inert unless attached).
    obs::PacketTracer *trace_ = nullptr;
    std::uint8_t traceLane_ = 0;
    std::uint32_t traceCore_ = 0;

    void setPowerLevel(double frac);
    double idleLevel() const;
    double freqScale() const;
};

/**
 * Accelerator pipeline (REM / crypto / compression units, §II-A):
 * bounded input queue, serialization at the calibrated rate, fixed
 * pipeline latency. The real function work still executes per packet.
 */
class Accelerator
{
  public:
    struct Config
    {
        funcs::FunctionProfile profile;
        std::uint32_t queue_depth = 1024;
        coherence::NodeId node = coherence::NodeId::Snic;
        net::Processor tag = net::Processor::SnicAccel;
        net::MacAddr service_mac;
        net::Ipv4Addr service_ip;
        SleepPolicy sleep;      //!< applied to the feeding cores
        /** Power of the polling cores feeding the accelerator (W). */
        double feed_power_w = 0.0;
        /** Throughput fraction the feeding cores sustain in software
         *  when the accelerator fails (§ fault model). */
        double fallback_frac = 0.15;
        /** Response attribution while running the software fallback. */
        net::Processor fallback_tag = net::Processor::SnicCpu;
    };

    Accelerator(EventQueue &eq, Config cfg,
                funcs::NetworkFunction &fn,
                coherence::CoherenceDomain *domain, net::PacketSink &tx,
                PowerMeter &power);
    ~Accelerator();

    Accelerator(const Accelerator &) = delete;
    Accelerator &operator=(const Accelerator &) = delete;

    /** Input port. */
    net::PacketSink &input() { return queue_; }

    std::uint32_t occupancy() const { return queue_.occupancy(); }
    std::uint64_t drops() const { return queue_.drops(); }
    std::uint64_t processedFrames() const { return frames_; }
    std::uint64_t processedBytes() const { return bytes_; }

    /**
     * Fault hook: the accelerator pipeline dies and the feeding cores
     * take over in software at fallback_frac of the accelerated rate
     * (no fixed pipeline latency, responses tagged as CPU-processed,
     * the dead unit draws nothing while the cores stay hot).
     */
    void setFailed(bool failed);

    bool accelFailed() const { return failed_; }

    /** Fault hook: fail-stop — the input queue drops every arrival. */
    void setDead(bool dead) { queue_.setDisabled(dead); }

    bool dead() const { return queue_.disabled(); }

    /**
     * Integrated energy split since construction, joules: the cores
     * feeding the pipeline vs. the accelerator block itself (a failed
     * accelerator integrates nothing while the cores stay hot). Both
     * are monotone; the energy ledger windows them by snapshots.
     */
    double feedJoulesNow() const;
    double accelJoulesNow() const;

    /** Current watts split matching the joules split. */
    double feedCurrentW() const { return feedTw_.value(); }
    double accelCurrentW() const { return accelTw_.value(); }

    /** Attach the packet tracer: the input queue records
     *  RingEnqueue/Drop on @p ring_lane; pipeline entry and exit
     *  record ServiceStart/ServiceEnd on @p core_lane. */
    void
    setTrace(obs::PacketTracer *t, std::uint8_t ring_lane,
             std::uint8_t core_lane)
    {
        queue_.setTrace(t, ring_lane, &eq_);
        trace_ = t;
        traceLane_ = core_lane;
    }

    void resetStats();

  private:
    void pump();
    void finish(net::PacketPtr pkt);

    EventQueue &eq_;
    Config cfg_;
    funcs::NetworkFunction &fn_;
    coherence::CoherenceDomain *domain_;
    net::PacketSink &tx_;
    PowerMeter &power_;

    nic::DpdkRing queue_;
    CallbackEvent sleepEvent_;
    bool inSlot_ = false;
    bool busyPipeline_ = false;
    bool deepSleep_ = false;
    bool failed_ = false;       //!< software fallback active
    double powerLevel_ = 0.0;   //!< fraction of (feed + accel) power
    double currentW_ = 0.0;     //!< absolute watts currently charged
    TimeWeighted feedTw_;       //!< feeding-core watts (energy ledger)
    TimeWeighted accelTw_;      //!< accelerator watts (energy ledger)
    std::uint64_t frames_ = 0;
    std::uint64_t bytes_ = 0;

    // Observability (null/inert unless attached).
    obs::PacketTracer *trace_ = nullptr;
    std::uint8_t traceLane_ = 0;

    void setPowerLevel(double frac);
    double idleLevel() const;
    double activeBlockW() const;
};

/**
 * A complete processor: the unit HAL balances load between.
 */
class Processor
{
  public:
    struct Config
    {
        funcs::Platform platform = funcs::Platform::SnicBf2;
        funcs::FunctionProfile profile;
        unsigned cores = 8;
        std::uint32_t ring_descriptors = 512;
        SleepPolicy sleep;
        DvfsPolicy dvfs;
        /** Core-scaling governor; ignored in accelerator mode (a
         *  pipeline has no core count to scale). */
        GovernorPolicy governor;
        coherence::NodeId node = coherence::NodeId::Snic;
        net::MacAddr service_mac;
        net::Ipv4Addr service_ip;
        /** Software-fallback rate fraction after accelerator failure. */
        double accel_fallback_frac = 0.15;
    };

    Processor(EventQueue &eq, Config cfg, funcs::NetworkFunction &fn,
              coherence::CoherenceDomain *domain, net::PacketSink &tx);
    ~Processor();

    /** Where the eSwitch delivers this processor's packets. */
    net::PacketSink &input();

    /** Max Rx-ring occupancy (the LBP's RxQ_occ signal). */
    std::uint32_t maxRingOccupancy() const;

    /** Frames/bytes completed (the LBP's SNIC_TP signal). */
    std::uint64_t processedFrames() const;
    std::uint64_t processedBytes() const;

    /** Packets tail-dropped at full rings/queues. */
    std::uint64_t drops() const;

    /** Average dynamic watts since the last reset. */
    double averageDynamicW() const { return power_.averageW(); }

    double currentDynamicW() const { return power_.currentW(); }

    // --- energy-ledger taps (monotone since construction; the
    // ledger windows them by snapshot differencing) ------------------

    /** CPU-side dynamic energy, joules: the poll cores, or in accel
     *  mode the cores feeding the pipeline. */
    double cpuJoulesNow() const;

    /** Accelerator-block dynamic energy, joules (0 in CPU mode). */
    double accelJoulesNow() const;

    /** Current watts matching the cpu/accel joules split. */
    double cpuCurrentW() const;
    double accelCurrentW() const;

    /** Poll cores (0 in accel mode), for per-core attribution. */
    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** One core's monotone dynamic energy, joules (energy ledger). */
    double coreJoulesNow(unsigned idx) const;

    /** One core's currently-charged watts. */
    double coreCurrentW(unsigned idx) const;

    // --- core-scaling governor ---------------------------------------

    /** True when the governor is armed on this processor. */
    bool hasGovernor() const { return governor_ != nullptr; }

    /** The governor itself (null when static); span attachment. */
    CoreGovernor *coreGovernor() { return governor_.get(); }

    /**
     * Cores currently serving traffic: the governor's active set, or
     * the configured count when static. The LBP's capacity signal.
     */
    unsigned governorActiveCores() const;

    std::uint64_t governorEpochs() const;
    std::uint64_t governorRebalances() const;
    std::uint64_t governorMigrations() const;
    std::uint64_t governorParks() const;
    std::uint64_t governorUnparks() const;
    unsigned governorMinActive() const;
    unsigned governorMaxActive() const;

    /**
     * Register this processor's stats under @p prefix
     * (`prefix.coreN.busy_frac`, `prefix.ringN.occupancy`, ...) and
     * attach the packet tracer to its rings and cores. Either pointer
     * may be null; the corresponding hooks stay inert. @p series
     * forwards the per-epoch time-series flag to every probe.
     */
    void attachObs(obs::StatsRegistry *reg, obs::PacketTracer *tracer,
                   const std::string &prefix, std::uint8_t ring_lane,
                   std::uint8_t core_lane, bool series = false);

    void resetStats();

    const Config &config() const { return cfg_; }

    bool usesAccel() const { return accel_ != nullptr; }

    /** Current DVFS frequency scale (1.0 when DVFS is off). */
    double dvfsScale() const { return freqScale_; }

    // --- fault / recovery hooks --------------------------------------

    /** Stall or resume one core (no-op for out-of-range @p idx). */
    void setCoreStalled(unsigned idx, bool stalled,
                        double power_frac = 1.0);

    /** Stall or resume every core at @p power_frac of active power. */
    void stallAll(bool stalled, double power_frac = 1.0);

    /**
     * Fail-stop crash: every core stops and draws nothing (accel
     * mode: the input queue drops all arrivals). Packets already in
     * the rings are stranded until restore().
     */
    void fail();

    /** Undo fail(): cores resume from their ring backlog. */
    void restore();

    /** True after fail() until restore(). */
    bool failed() const { return failed_; }

    /** Cores not currently stalled (accel mode: 0 or cfg.cores). */
    unsigned aliveCores() const;

    /**
     * Liveness as the watchdog sees it: can this processor make
     * forward progress? A degraded accelerator (software fallback)
     * is still alive; a fail-stopped one is not.
     */
    bool alive() const;

    /** Fault hook: all cores run at @p f of nominal speed. */
    void setSpeedFactor(double f);

    /** Wake every sleeping core immediately (failover fast path). */
    void forceWakeAll();

    /** Accelerator dies; feeding cores fall back to software. */
    void failAccelerator();

    /** Accelerator restored to the calibrated rate. */
    void repairAccelerator();

    /** True while the software fallback is serving. */
    bool accelDegraded() const;

  private:
    EventQueue &eq_;
    Config cfg_;
    PowerMeter power_;

    // CPU mode.
    std::vector<std::unique_ptr<nic::DpdkRing>> rings_;
    std::vector<std::unique_ptr<PollCore>> cores_;
    nic::RssDistributor rss_;

    // Governor (CPU mode, cfg.governor.enabled): the indirection
    // table replaces the static RSS spread as the input sink.
    std::unique_ptr<FlowGroupTable> groupTable_;
    std::unique_ptr<CoreGovernor> governor_;

    // Accel mode.
    std::unique_ptr<Accelerator> accel_;

    // DVFS governor state (CPU mode only).
    double freqScale_ = 1.0;
    CallbackEvent dvfsEvent_;

    bool failed_ = false;   //!< fail-stop state
    std::uint64_t statDropBase_ = 0;
};

} // namespace halsim::proc

#endif // HALSIM_PROC_PROCESSOR_HH
