/**
 * @file
 * The intelligent load-balancing policy (LBP) of §V-B, Algorithm 1:
 * a greedy controller running on one SNIC CPU core. Every epoch it
 * reads the SNIC processor's throughput (accumulated rx_burst
 * returns) and the maximum Rx-queue occupancy
 * (rte_eth_rx_queue_count over all queues); when the threshold is
 * within Delta_TP of the achieved throughput it nudges Fwd_Th up or
 * down by Step_Th according to the low/high occupancy watermarks.
 * The new threshold reaches the FPGA director after the
 * LBP->FPGA Ethernet communication latency.
 */

#ifndef HALSIM_CORE_LBP_HH
#define HALSIM_CORE_LBP_HH

#include <cstdint>

#include "core/hlb.hh"
#include "proc/processor.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"

namespace halsim::core {

/**
 * Algorithm 1, with the paper's optional adaptive step extension.
 */
class LoadBalancingPolicy
{
  public:
    struct Config
    {
        Tick epoch = 100 * kUs;         //!< policy period
        double delta_tp_gbps = 3.0;     //!< Delta_TP
        double step_gbps = 1.0;         //!< Step_Th
        std::uint32_t wm_low = 4;       //!< WM_Low (ring occupancy)
        std::uint32_t wm_high = 48;     //!< WM_High
        double initial_fwd_gbps = 5.0;
        double min_fwd_gbps = 0.5;
        double max_fwd_gbps = 100.0;
        /** §V-B: adaptively scale Step_Th with the watermark error to
         *  converge faster. */
        bool adaptive_step = false;
        /** FPGA threshold update latency over the Ethernet hop. */
        Tick comms_latency = 2 * kUs;
    };

    LoadBalancingPolicy(EventQueue &eq, Config cfg,
                        proc::Processor &snic, TrafficDirector &director);
    ~LoadBalancingPolicy();

    void start();
    void stop();

    /** Threshold currently decided by the policy (Gbps). */
    double fwdTh() const { return fwdTh_; }

    /** SNIC throughput observed in the last epoch (Gbps). */
    double snicTpGbps() const { return snicTp_; }

    std::uint64_t adjustmentsUp() const { return ups_; }
    std::uint64_t adjustmentsDown() const { return downs_; }
    std::uint64_t epochs() const { return epochs_; }

  private:
    void tick();

    EventQueue &eq_;
    Config cfg_;
    proc::Processor &snic_;
    TrafficDirector &director_;

    CallbackEvent tickEvent_;
    std::uint64_t lastBytes_ = 0;
    double fwdTh_;
    double snicTp_ = 0.0;
    std::uint64_t ups_ = 0;
    std::uint64_t downs_ = 0;
    std::uint64_t epochs_ = 0;
};

} // namespace halsim::core

#endif // HALSIM_CORE_LBP_HH
