/**
 * @file
 * The intelligent load-balancing policy (LBP) of §V-B, Algorithm 1:
 * a greedy controller running on one SNIC CPU core. Every epoch it
 * reads the SNIC processor's throughput (accumulated rx_burst
 * returns) and the maximum Rx-queue occupancy
 * (rte_eth_rx_queue_count over all queues); when the threshold is
 * within Delta_TP of the achieved throughput it nudges Fwd_Th up or
 * down by Step_Th according to the low/high occupancy watermarks.
 * The new threshold reaches the FPGA director after the
 * LBP->FPGA Ethernet communication latency.
 */

#ifndef HALSIM_CORE_LBP_HH
#define HALSIM_CORE_LBP_HH

#include <cstdint>
#include <functional>

#include "core/hlb.hh"
#include "proc/processor.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"

namespace halsim {
class Rng;
}

namespace halsim::core {

/**
 * Algorithm 1, with the paper's optional adaptive step extension.
 */
class LoadBalancingPolicy
{
  public:
    struct Config
    {
        Tick epoch = 100 * kUs;         //!< policy period
        double delta_tp_gbps = 3.0;     //!< Delta_TP
        double step_gbps = 1.0;         //!< Step_Th
        std::uint32_t wm_low = 4;       //!< WM_Low (ring occupancy)
        std::uint32_t wm_high = 48;     //!< WM_High
        double initial_fwd_gbps = 5.0;
        double min_fwd_gbps = 0.5;
        double max_fwd_gbps = 100.0;
        /** §V-B: adaptively scale Step_Th with the watermark error to
         *  converge faster. */
        bool adaptive_step = false;
        /** FPGA threshold update latency over the Ethernet hop. */
        Tick comms_latency = 2 * kUs;
    };

    LoadBalancingPolicy(EventQueue &eq, Config cfg,
                        proc::Processor &snic, TrafficDirector &director);
    ~LoadBalancingPolicy();

    void start();
    void stop();

    /**
     * Co-design hook with the core-scaling governor: @p gbps reports
     * the SNIC's *active* capacity (scaledTp over the governor's
     * active-core count). Each epoch clamps Fwd_Th to it, so a
     * consolidated SNIC is never asked to absorb its full static
     * rating — the director decides *where*, the governor *how many*.
     * Unset (default) keeps the static cfg.max_fwd_gbps ceiling only.
     */
    void
    setCapacityProvider(std::function<double()> gbps)
    {
        capacity_ = std::move(gbps);
    }

    /** Threshold currently decided by the policy (Gbps). */
    double fwdTh() const { return fwdTh_; }

    /** SNIC throughput observed in the last epoch (Gbps). */
    double snicTpGbps() const { return snicTp_; }

    std::uint64_t adjustmentsUp() const { return ups_; }
    std::uint64_t adjustmentsDown() const { return downs_; }
    std::uint64_t epochs() const { return epochs_; }

    // --- fault hooks --------------------------------------------------

    /**
     * Impair the LBP->FPGA Ethernet hop: each outgoing update or
     * heartbeat is dropped with @p loss_prob and delayed by an extra
     * @p extra_delay. @p rng (may be null when loss_prob is 0) must
     * outlive the impairment.
     */
    void setControlImpairment(double loss_prob, Tick extra_delay,
                              Rng *rng);

    /** Restore the control channel to nominal. */
    void clearControlImpairment();

    /** Hang (true) or resume (false) the LBP core: while stalled no
     *  epochs run, so no updates and no heartbeats are sent. */
    void setStalled(bool stalled);

    bool stalled() const { return stalled_; }

    /** Updates/heartbeats lost on the impaired control channel. */
    std::uint64_t updatesDropped() const { return updatesDropped_; }

    /** Heartbeats successfully sent to the FPGA. */
    std::uint64_t heartbeats() const { return heartbeats_; }

  private:
    void tick();
    bool sendCtrl(std::function<void()> fn);

    EventQueue &eq_;
    Config cfg_;
    proc::Processor &snic_;
    TrafficDirector &director_;

    CallbackEvent tickEvent_;
    std::function<double()> capacity_;   //!< governor active capacity
    std::uint64_t lastBytes_ = 0;
    double fwdTh_;
    double snicTp_ = 0.0;
    std::uint64_t ups_ = 0;
    std::uint64_t downs_ = 0;
    std::uint64_t epochs_ = 0;

    // Fault state.
    bool stalled_ = false;
    double ctrlLoss_ = 0.0;
    Tick ctrlExtraDelay_ = 0;
    Rng *ctrlRng_ = nullptr;
    std::uint64_t updatesDropped_ = 0;
    std::uint64_t heartbeats_ = 0;
};

} // namespace halsim::core

#endif // HALSIM_CORE_LBP_HH
