/**
 * @file
 * ServerSystem: the full evaluated machine. Assembles client link,
 * HLB (monitor/director/merger), eSwitch, SNIC processor, host
 * processor, LBP, and power accounting in one of four modes:
 *
 *  - HostOnly: the host processor handles every packet (the paper's
 *    host baseline);
 *  - SnicOnly: the SNIC processor handles every packet;
 *  - Hal:      the proposed system — HLB splits at Fwd_Th set by LBP,
 *    host cores sleep at low rates;
 *  - Slb:      the software load balancer baseline of §IV.
 *
 * run() drives a traffic process through the system with a warmup and
 * a measurement window and returns the paper's metrics: delivered
 * throughput (average and windowed max), p99 latency, average
 * system-wide power, and energy efficiency.
 */

#ifndef HALSIM_CORE_SERVER_HH
#define HALSIM_CORE_SERVER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "coherence/domain.hh"
#include "core/hlb.hh"
#include "core/lbp.hh"
#include "core/slb.hh"
#include "core/watchdog.hh"
#include "fault/fault.hh"
#include "funcs/calibration.hh"
#include "funcs/registry.hh"
#include "net/client.hh"
#include "net/link.hh"
#include "net/traffic.hh"
#include "net/wheel_edge.hh"
#include "nic/eswitch.hh"
#include "obs/energy.hh"
#include "obs/obs.hh"
#include "obs/slo.hh"
#include "proc/processor.hh"
#include "sim/event_queue.hh"
#include "sim/wheels.hh"

namespace halsim::core {

/** Which processors handle traffic. */
enum class Mode : std::uint8_t
{
    HostOnly,
    SnicOnly,
    Hal,
    Slb,
    /** §IV's alternative: the host CPU runs the software balancer,
     *  keeping the excess and forwarding the below-threshold share
     *  to the SNIC — always-hot host, double DPDK processing. */
    HostSlb,
};

const char *modeName(Mode m);

/** Full system configuration. */
struct ServerConfig
{
    Mode mode = Mode::Hal;

    funcs::FunctionId function = funcs::FunctionId::Nat;
    /** Second stage for the pipelined compositions of §VII-B. */
    std::optional<funcs::FunctionId> pipeline_second;
    /** REM ruleset variant (affects the host profile, §III-A). */
    alg::RulesetKind rem_ruleset = alg::RulesetKind::Teakettle;

    funcs::Platform host_platform = funcs::Platform::HostSkylake;
    funcs::Platform snic_platform = funcs::Platform::SnicBf2;
    unsigned host_cores = 8;
    unsigned snic_cores = 8;
    std::uint32_t ring_descriptors = 512;

    /**
     * All power management in one sub-struct: host-CPU sleep states
     * (§V-B, HAL default on), SNIC-CPU DVFS (§VIII), and the adaptive
     * core-scaling governor (ROADMAP item 3). The governor arms on
     * *both* CPU processors; LBP reads its active capacity.
     */
    proc::PowerPolicy power;

    /**
     * Share stateful-function state coherently (CXL-SNIC emulation,
     * §V-C). When false, stateful functions run "like stateless ones"
     * — the paper's §VII-B methodology check.
     */
    bool coherent_state = true;

    SplitMode split_mode = SplitMode::TokenBucket;
    TrafficMonitor::Config monitor;
    LoadBalancingPolicy::Config lbp;

    /** SLB baseline parameters (Mode::Slb). */
    unsigned slb_cores = 4;
    double slb_fwd_th_gbps = 20.0;

    std::size_t frame_bytes = net::kMtuFrameBytes;
    std::uint64_t seed = 1;

    /** Scheduled fault events, times relative to run() start. */
    fault::FaultPlan faults;

    /** Degraded-mode watchdog (active in Mode::Hal only). */
    HealthWatchdog::Config watchdog;

    /** Stats-registry + packet-tracing knobs (off by default; turning
     *  them on must not change simulation results). */
    obs::ObsConfig obs;

    /** SLO monitoring (off by default; independent of `obs` so the
     *  RunResult SLO fields exist even with stats/tracing disabled). */
    obs::SloConfig slo;

    /**
     * Time-parallel single-run execution (DESIGN.md §13). 0 keeps the
     * classic monolithic event loop. Nonzero asks for the partitioned
     * engine — client/SNIC/host event wheels windowed by the minimum
     * cross-wheel latency — with 1 running every wheel on the calling
     * thread and >=2 running one thread per wheel. The request is
     * honored only for configurations the partition supports
     * (Mode::Hal, stateless function, no faults/watchdog/obs);
     * anything else deterministically falls back to the monolithic
     * engine — check ServerSystem::partitioned(). run-threads 1 and N
     * are bit-identical by construction (test_determinism enforces
     * it).
     */
    unsigned run_threads = 0;

    // --- named presets ------------------------------------------------
    // The paper's four standard operating points, so benches and
    // tests stop copy-pasting field assignments.

    /** The proposed system: HLB + LBP + host sleep (Mode::Hal). */
    static ServerConfig halDefault(
        funcs::FunctionId fn = funcs::FunctionId::Nat);

    /** Host baseline: every packet on the busy-polling host CPU. */
    static ServerConfig hostBaseline(
        funcs::FunctionId fn = funcs::FunctionId::Nat);

    /** SNIC baseline: every packet on the SNIC processor. */
    static ServerConfig snicBaseline(
        funcs::FunctionId fn = funcs::FunctionId::Nat);

    /** §IV software load balancer baseline (Mode::Slb). */
    static ServerConfig slbBaseline(
        funcs::FunctionId fn = funcs::FunctionId::Nat);

    /**
     * Check the whole configuration in one pass, returning every
     * violation (each naming the offending field) instead of stopping
     * at the first. Empty means valid. ServerSystem's constructor
     * throws std::invalid_argument joining all of them.
     */
    std::vector<std::string> validate() const;
};

/** The paper's metrics for one operating point. */
struct RunResult
{
    double offered_gbps = 0.0;       //!< average offered rate
    double delivered_gbps = 0.0;     //!< average response throughput
    double max_window_gbps = 0.0;    //!< max over 10 ms windows
    double p99_us = 0.0;
    double mean_us = 0.0;
    double system_power_w = 0.0;     //!< base + all dynamic
    double dynamic_power_w = 0.0;
    double energy_eff = 0.0;         //!< Gbps per watt (system)
    std::uint64_t sent = 0;
    std::uint64_t responses = 0;
    std::uint64_t drops = 0;
    /**
     * Packets still inside the server when the measurement window
     * closed (sent but neither answered nor dropped yet). They drain
     * afterwards and their latency still counts; surfacing the count
     * lets lossFraction() subtract them explicitly instead of
     * silently clamping a negative ratio.
     */
    std::uint64_t in_flight_at_window_end = 0;
    std::uint64_t snic_frames = 0;   //!< responses from the SNIC side
    std::uint64_t host_frames = 0;   //!< responses from the host side
    std::uint64_t slb_kept = 0;      //!< SLB: packets kept local
    std::uint64_t slb_forwarded = 0; //!< SLB: packets tx_burst'ed away
    double final_fwd_th_gbps = 0.0;

    // --- fault / degradation accounting ------------------------------
    std::uint64_t faults_injected = 0;   //!< fault events applied
    std::uint64_t faults_reverted = 0;   //!< transient faults healed
    std::uint64_t failovers = 0;         //!< watchdog left Normal
    std::uint64_t recoveries = 0;        //!< watchdog returned to Normal
    double degraded_us = 0.0;            //!< time outside Normal
    double time_to_recover_us = 0.0;     //!< last detect->recover span
    std::uint64_t failover_drops = 0;    //!< drops while degraded
    std::uint64_t ctrl_updates_dropped = 0; //!< lost LBP->FPGA messages

    // --- energy ledger (measurement window, §V-B / Fig. 3) -----------
    double energy_snic_cpu_j = 0.0;   //!< SNIC wimpy cores / accel feed
    double energy_snic_accel_j = 0.0; //!< SNIC accelerator block
    double energy_host_cpu_j = 0.0;   //!< host brawny cores / accel feed
    double energy_host_accel_j = 0.0; //!< host accelerator block
    double energy_extra_j = 0.0;      //!< HLB + LBP / SLB cores
    double energy_static_j = 0.0;     //!< idle-server baseline (194 W)
    double energy_total_j = 0.0;      //!< literal sum of the above
    double j_per_request = 0.0;       //!< energy_total_j / responses
    double j_per_gb = 0.0;            //!< energy_total_j per gigabit

    // --- SLO monitor (Table 2) ---------------------------------------
    double slo_target_p99_us = 0.0;      //!< 0 when monitoring is off
    double slo_worst_p99_us = 0.0;       //!< worst per-epoch p99
    std::uint64_t slo_epochs = 0;        //!< epochs in the window
    std::uint64_t slo_violation_epochs = 0; //!< epochs with p99 > target

    // --- fleet resilience layer (all zero for single-server runs) ----
    std::uint64_t fleet_backends = 0;    //!< backends in the fleet
    std::uint64_t fleet_retries = 0;     //!< client retransmissions
    std::uint64_t fleet_timeouts = 0;    //!< client attempt timeouts
    std::uint64_t fleet_duplicates = 0;  //!< late responses suppressed
    std::uint64_t fleet_sheds = 0;       //!< admission-control drops
    std::uint64_t fleet_requests_failed = 0; //!< retry budget exhausted
    std::uint64_t fleet_failovers = 0;   //!< health down-transitions
    std::uint64_t fleet_flows_migrated = 0; //!< pins moved on failover
    std::uint64_t fleet_drain_timeouts = 0; //!< drains written off
    std::uint64_t fleet_probes_failed = 0;  //!< failed health probes
    std::uint64_t fleet_backend_served_min = 0; //!< least-loaded backend
    std::uint64_t fleet_backend_served_max = 0; //!< most-loaded backend
    double energy_fleet_j = 0.0;         //!< sum of per-backend accounts

    // --- core-scaling governor (zero when not armed) ------------------
    std::uint64_t gov_epochs = 0;        //!< governor epochs (both procs)
    std::uint64_t gov_rebalances = 0;    //!< epochs that moved groups
    std::uint64_t gov_migrations = 0;    //!< flow-group moves
    std::uint64_t gov_parks = 0;         //!< cores parked
    std::uint64_t gov_unparks = 0;       //!< cores woken back up
    std::uint64_t gov_min_active_cores = 0; //!< sum of per-proc minima
    std::uint64_t gov_max_active_cores = 0; //!< sum of per-proc maxima

    /**
     * Schedule-into-past clamps across every event queue in the run
     * (release builds clamp instead of asserting; see
     * EventQueue::pastClamps). Nonzero means a component computed a
     * delivery tick before now — a causality bug that debug builds
     * would have caught — so benches and tests gate on zero.
     */
    std::uint64_t past_clamps = 0;

    // --- distributed tracing / flight recorder (zero when off) --------
    std::uint64_t trace_spans = 0;       //!< span records written
    std::uint64_t fr_dumps = 0;          //!< flight-recorder dumps taken
    std::uint64_t fr_trigger_fault = 0;  //!< fault-injection triggers
    std::uint64_t fr_trigger_slo = 0;    //!< SLO epoch-violation triggers
    std::uint64_t fr_trigger_shed = 0;   //!< shed-watermark triggers
    std::uint64_t fr_trigger_gov = 0;    //!< governor-storm triggers

    /**
     * Loss fraction over the measurement window. Packets in flight at
     * the window boundary are accounted explicitly (they were neither
     * delivered nor lost when the window closed), so the ratio needs
     * no silent clamping: resolved = responses + in_flight, and only
     * a genuine shortfall counts as loss.
     */
    double
    lossFraction() const
    {
        if (sent == 0)
            return 0.0;
        const std::uint64_t resolved = responses + in_flight_at_window_end;
        if (resolved >= sent)
            return 0.0;
        return static_cast<double>(sent - resolved) /
               static_cast<double>(sent);
    }

    // --- serialization (the single emission point for benches) -------

    /** One JSON object with every field (no trailing newline). */
    void toJson(std::ostream &os) const;

    /** The same fields without the enclosing braces, for callers that
     *  splice extra keys (label, mode, ...) into the object. */
    void toJsonFields(std::ostream &os) const;

    /** One CSV data row matching csvHeader() (no trailing newline). */
    void toCsvRow(std::ostream &os) const;

    /** The CSV header row for toCsvRow() (no trailing newline). */
    static void csvHeader(std::ostream &os);
};

/**
 * The assembled server + client pair.
 */
class ServerSystem
{
  public:
    ServerSystem(EventQueue &eq, ServerConfig cfg);
    ~ServerSystem();

    ServerSystem(const ServerSystem &) = delete;
    ServerSystem &operator=(const ServerSystem &) = delete;

    /**
     * Drive @p rate through the system.
     *
     * @param rate            offered-rate process (constant or trace)
     * @param warmup          excluded from all statistics
     * @param measure         measurement window
     * @param resample_epoch  how often the generator re-draws rate
     */
    RunResult run(std::unique_ptr<net::RateProcess> rate, Tick warmup,
                  Tick measure, Tick resample_epoch = 1 * kMs);

    // --- test/inspection hooks ---------------------------------------
    const ServerConfig &config() const { return cfg_; }
    funcs::NetworkFunction &function() { return *fn_; }
    proc::Processor *snicProcessor() { return snic_.get(); }
    proc::Processor *hostProcessor() { return host_.get(); }
    TrafficDirector *director() { return director_.get(); }
    TrafficMerger *merger() { return merger_.get(); }
    LoadBalancingPolicy *lbp() { return lbp_.get(); }
    SoftwareLoadBalancer *slb() { return slb_.get(); }
    HealthWatchdog *watchdog() { return watchdog_.get(); }
    nic::ESwitch *eswitch() { return eswitch_.get(); }
    net::Link *clientLink() { return clientLink_.get(); }
    net::Link *returnLink() { return returnLink_.get(); }
    coherence::CoherenceDomain *domain() { return domain_.get(); }
    net::Client &client() { return client_; }

    /** Null unless cfg.obs enabled stats or tracing. */
    obs::Observability *obs() { return obs_.get(); }
    const obs::Observability *obs() const { return obs_.get(); }

    /** Paper addressing: the identity clients talk to. */
    net::Ipv4Addr snicIp() const { return snicIp_; }
    net::Ipv4Addr hostIp() const { return hostIp_; }

    /**
     * True when this system runs on the partitioned (time-parallel)
     * engine; false when cfg.run_threads was 0 or the configuration
     * was coerced back to the monolithic loop.
     */
    bool partitioned() const { return partitioned_; }

    /** Events executed so far across the engine's queue(s) — the
     *  monolithic queue, or the sum over the three wheels. */
    std::uint64_t
    eventsExecuted() const
    {
        if (!partitioned_)
            return eq_.executed();
        std::uint64_t n = 0;
        for (const auto &q : wheelEq_)
            n += q->executed();
        return n;
    }

    /** Schedule-into-past clamps across the engine's queue(s); any
     *  nonzero value is a latent causality bug (RunResult carries it
     *  as past_clamps and tests gate on zero). */
    std::uint64_t
    pastClamps() const
    {
        if (!partitioned_)
            return eq_.pastClamps();
        std::uint64_t n = eq_.pastClamps();
        for (const auto &q : wheelEq_)
            n += q->pastClamps();
        return n;
    }

  private:
    double totalDynamicW() const;
    std::uint64_t totalDrops() const;

    /** Build the obs facade, register the stats tree, attach tracer
     *  hooks (ctor tail; no-op unless cfg.obs enables something). */
    void buildObs();

    /** Instantiate the configured function (or pipeline). */
    static funcs::FunctionPtr makeFn(const ServerConfig &cfg);

    /** Whether cfg + function support the partitioned engine. */
    static bool supportsPartition(const ServerConfig &cfg,
                                  const funcs::NetworkFunction &fn);

    // Wheel selectors: the external queue in monolithic mode, the
    // owning wheel's queue in partitioned mode. Usable from the ctor
    // init list once partitioned_/wheelEq_ are initialized.
    EventQueue &clientEq() { return partitioned_ ? *wheelEq_[0] : eq_; }
    EventQueue &snicEq() { return partitioned_ ? *wheelEq_[1] : eq_; }
    EventQueue &hostEq() { return partitioned_ ? *wheelEq_[2] : eq_; }

    /** Wire the four cross-wheel edges and build the runner. */
    void buildPartition();

    EventQueue &eq_;
    ServerConfig cfg_;
    Rng rng_;

    net::MacAddr clientMac_, snicMac_, hostMac_;
    net::Ipv4Addr clientIp_, snicIp_, hostIp_;

    funcs::FunctionPtr fn_;
    /** Partitioned mode: per-wheel function instances so the SNIC and
     *  host threads never share one object (the monolithic engine
     *  keeps the single shared fn_). */
    funcs::FunctionPtr fnSnic_, fnHost_;

    bool partitioned_;
    /** Wheel queues ([0] client, [1] snic, [2] host), banded 1..3;
     *  null in monolithic mode. Declared before every component so
     *  the channels bound to them deschedule before the queues die. */
    std::array<std::unique_ptr<EventQueue>, 3> wheelEq_;

    net::Client client_;
    std::unique_ptr<coherence::CoherenceDomain> domain_;

    // Egress path (server -> client).
    std::unique_ptr<net::Link> returnLink_;
    std::unique_ptr<TrafficMerger> merger_;
    std::unique_ptr<nic::FixedDelay> mergerDelay_;    //!< HLB egress hop
    std::unique_ptr<nic::FixedDelay> hostTxDelay_;    //!< PCIe back-hop

    // Processors.
    std::unique_ptr<proc::Processor> snic_;
    std::unique_ptr<proc::Processor> host_;

    // Ingress path (client -> processors).
    std::unique_ptr<nic::ESwitch> eswitch_;
    std::unique_ptr<nic::FixedDelay> snicPathDelay_;
    std::unique_ptr<nic::FixedDelay> hostPathDelay_;
    std::unique_ptr<TrafficMonitor> monitor_;
    std::unique_ptr<TrafficDirector> director_;
    std::unique_ptr<nic::FixedDelay> hlbDelay_;
    std::unique_ptr<LoadBalancingPolicy> lbp_;
    std::unique_ptr<SoftwareLoadBalancer> slb_;
    std::unique_ptr<net::Link> clientLink_;

    // Fault-tolerance machinery.
    std::unique_ptr<HealthWatchdog> watchdog_;
    std::unique_ptr<fault::FaultInjector> injector_;

    /** SLB balancer cores, the LBP core, and the HLB itself. */
    proc::PowerMeter extraPower_;

    /** Per-component energy accounts over the measurement window
     *  (always on; pull-based, nothing on the hot path). */
    obs::EnergyLedger energy_;

    /** SLO violation-window monitor (null unless cfg.slo enabled). */
    std::unique_ptr<obs::SloMonitor> slo_;

    /** Stats registry + packet tracer (null when disabled). */
    std::unique_ptr<obs::Observability> obs_;

    net::PacketSink *ingress_ = nullptr;

    // --- time-parallel plumbing (null in monolithic mode) -------------
    // Declared last: the runner joins its workers before the edges
    // die, and the edges deschedule from the wheel queues before any
    // component they reference goes away.
    std::unique_ptr<net::WheelEdge> edgeClientToSnic_;
    std::unique_ptr<net::WheelEdge> edgeSnicToClient_;
    std::unique_ptr<net::WheelEdge> edgeSnicToHost_;
    std::unique_ptr<net::WheelEdge> edgeHostToSnic_;
    std::unique_ptr<WheelRunner> runner_;
};

} // namespace halsim::core

#endif // HALSIM_CORE_SERVER_HH
