/**
 * @file
 * The software-based load balancer baseline of §IV (SLB): dedicated
 * SNIC CPU cores receive every packet, count the rate, keep packets
 * up to Fwd_Th for local SNIC processing, and tx_burst the excess to
 * the host CPU. Forwarding costs real SNIC core cycles per packet
 * and the long eSwitch -> SNIC memory -> SNIC CPU -> eSwitch path,
 * which is exactly the limitation (dropped packets with one core,
 * inflated p99 with four) that motivates HAL.
 */

#ifndef HALSIM_CORE_SLB_HH
#define HALSIM_CORE_SLB_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "nic/dpdk_ring.hh"
#include "nic/eswitch.hh"
#include "proc/processor.hh"
#include "sim/event_queue.hh"

namespace halsim::core {

/**
 * SLB: N balancer cores with their own Rx rings in front of the SNIC
 * processing cores.
 */
class SoftwareLoadBalancer
{
  public:
    struct Config
    {
        unsigned slb_cores = 4;
        double fwd_th_gbps = 20.0;
        /** Per-packet rx_burst + rate bookkeeping cost. */
        Tick classify_cost = 60 * kNs;
        /**
         * Per-core forwarding throughput: the eSwitch -> SNIC memory
         * -> SNIC CPU -> eSwitch copy path moves ~15 Gbps per wimpy
         * core. Derived from Fig. 5's two anchors: one SLB core
         * drops ~58-61% of 80 Gbps offered at Fwd_Th = 20 (keeps 20,
         * forwards ~15), while four cores sustain the full 60 Gbps
         * forwarding load.
         */
        double fwd_gbps_per_core = 15.0;
        std::uint32_t ring_descriptors = 512;
        double core_active_w = 0.75;
        /** Identity written into forwarded packets' destination. */
        net::Ipv4Addr fwd_ip;
        net::MacAddr fwd_mac;
        /** Extra one-way latency of the software forwarding path. */
        Tick fwd_path_latency = 4 * kUs;
        /**
         * Which side of the threshold is tx_burst'ed away. The SNIC
         * SLB of §IV keeps the token-budget share and forwards the
         * excess to the host (false). The paper's host-side SLB
         * alternative does the reverse: the host keeps only the
         * excess and forwards everything below Fwd_Th to the SNIC
         * (true), paying cycles for the common case.
         */
        bool forward_kept = false;
    };

    /**
     * @param local_path  sink for packets processed on this side
     * @param fwd_path    sink for packets tx_burst'ed to the peer
     */
    SoftwareLoadBalancer(EventQueue &eq, Config cfg,
                         net::PacketSink &local_path,
                         net::PacketSink &fwd_path,
                         proc::PowerMeter &power);
    ~SoftwareLoadBalancer();

    /** Ingress for all client packets. */
    net::PacketSink &input() { return rss_; }

    std::uint64_t keptLocal() const { return kept_; }
    std::uint64_t forwarded() const { return forwarded_; }

    /** Packets dropped at the balancer rings (cores overloaded). */
    std::uint64_t drops() const;

    void
    resetStats()
    {
        kept_ = 0;
        forwarded_ = 0;
        dropBase_ = drops() + dropBase_;
    }

  private:
    class SlbCore;

    bool takeTokens(std::size_t bytes);

    EventQueue &eq_;
    Config cfg_;
    net::PacketSink &localPath_;
    net::PacketSink &fwdPath_;

    nic::RssDistributor rss_;
    std::vector<std::unique_ptr<nic::DpdkRing>> rings_;
    std::vector<std::unique_ptr<SlbCore>> cores_;

    // Shared token bucket at Fwd_Th.
    double tokens_ = 0.0;
    Tick lastRefill_ = 0;

    std::uint64_t kept_ = 0;
    std::uint64_t forwarded_ = 0;
    std::uint64_t dropBase_ = 0;
};

} // namespace halsim::core

#endif // HALSIM_CORE_SLB_HH
