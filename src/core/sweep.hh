/**
 * @file
 * Parallel sweep harness: run independent (ServerConfig, rate)
 * operating points across cores.
 *
 * Every paper figure is a sweep of independent points; each point
 * owns a private EventQueue and ServerSystem, so points parallelize
 * perfectly. Results are returned in input order and are bit-identical
 * to a serial run regardless of thread count (test_determinism holds
 * this property). The harness also standardizes the bench CLI
 * (`--threads N`, `--json PATH`) and writes the machine-readable
 * BENCH_*.json perf artifacts CI tracks.
 */

#ifndef HALSIM_CORE_SWEEP_HH
#define HALSIM_CORE_SWEEP_HH

#include <optional>
#include <string>
#include <vector>

#include "core/server.hh"
#include "net/traffic.hh"

namespace halsim::core {

/** One operating point of a sweep. */
struct SweepPoint
{
    ServerConfig cfg;
    /** Constant offered rate; ignored when @ref trace is set. */
    double rate_gbps = 0.0;
    /** Datacenter-trace workload instead of a constant rate. */
    std::optional<net::TraceKind> trace;
    Tick warmup = 20 * kMs;
    Tick measure = 100 * kMs;
    Tick resample = 1 * kMs;
    /** Row label carried into reports and JSON. */
    std::string label;
};

/** Harness knobs, usually parsed from the bench command line. */
struct SweepOptions
{
    /** Worker threads; 0 means all hardware threads. */
    unsigned threads = 1;
    /** When non-empty, write the results artifact here. */
    std::string json_path;
    /** When non-empty, enable stats and write the per-point stats
     *  trees here ({"bench","points":[{"label","stats":{...}}]}). */
    std::string stats_path;
    /** When non-empty, enable tracing and write a Chrome
     *  trace_event JSON here (one pid per sweep point). */
    std::string trace_path;
    /** When > 0, arm the SLO monitor at this p99 target for every
     *  point that does not already set its own target. */
    double slo_p99_us = 0.0;
    /** Bench name recorded in the artifact. */
    std::string bench_name = "sweep";
};

/**
 * Run every point (possibly in parallel) and return results in input
 * order. Writes the JSON artifacts named by opts.json_path /
 * opts.stats_path / opts.trace_path; the latter two force the
 * corresponding ObsConfig flag on for every point. Artifacts are
 * byte-deterministic for a given point list (no wall-clock content).
 */
std::vector<RunResult> runSweep(const std::vector<SweepPoint> &points,
                                const SweepOptions &opts = {});

/**
 * Parse the standard bench flags: `--threads N|all`, `--json PATH`,
 * `--stats-out PATH`, `--trace PATH`, and `--slo-p99 US`. The
 * HALSIM_THREADS
 * environment variable (same grammar, see core::envDefaultThreads)
 * supplies the default thread count when the flag is absent.
 * Malformed thread counts — negative, zero, or non-numeric — are
 * rejected with a diagnostic and exit code 2, as are unknown
 * arguments.
 */
SweepOptions parseSweepArgs(int argc, char **argv,
                            std::string bench_name);

/** One flat results row: the point's labeling fields (label, mode,
 *  function, rate_gbps) spliced with every RunResult field. */
std::string sweepRowJson(const SweepPoint &point, const RunResult &r);

/**
 * Write a results artifact: one flat sweepRowJson() row per point
 * under {"bench","threads","points":[...]}.
 */
void writeSweepJson(const std::string &path,
                    const std::string &bench_name,
                    const std::vector<SweepPoint> &points,
                    const std::vector<RunResult> &results,
                    unsigned threads);

} // namespace halsim::core

#endif // HALSIM_CORE_SWEEP_HH
