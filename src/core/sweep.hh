/**
 * @file
 * Parallel sweep harness: run independent (ServerConfig, rate)
 * operating points across cores.
 *
 * Every paper figure is a sweep of independent points; each point
 * owns a private EventQueue and ServerSystem, so points parallelize
 * perfectly. Results are returned in input order and are bit-identical
 * to a serial run regardless of thread count (test_determinism holds
 * this property). The harness also standardizes the bench CLI
 * (`--threads N`, `--json PATH`) and writes the machine-readable
 * BENCH_*.json perf artifacts CI tracks.
 */

#ifndef HALSIM_CORE_SWEEP_HH
#define HALSIM_CORE_SWEEP_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/server.hh"
#include "net/traffic.hh"

namespace halsim::core {

/** One operating point of a sweep. */
struct SweepPoint
{
    ServerConfig cfg;
    /** Constant offered rate; ignored when @ref trace is set. */
    double rate_gbps = 0.0;
    /** Datacenter-trace workload instead of a constant rate. */
    std::optional<net::TraceKind> trace;
    /** Custom rate-process factory (diurnal/burst workloads); takes
     *  precedence over both @ref trace and @ref rate_gbps. A factory
     *  (not an instance) so the point list stays copyable and each
     *  run gets a fresh process. */
    std::function<std::unique_ptr<net::RateProcess>()> make_rate;
    Tick warmup = 20 * kMs;
    Tick measure = 100 * kMs;
    Tick resample = 1 * kMs;
    /** Row label carried into reports and JSON. */
    std::string label;
};

/** Harness knobs, usually parsed from the bench command line. */
struct SweepOptions
{
    /** Worker threads; 0 means all hardware threads. */
    unsigned threads = 1;
    /** When non-empty, write the results artifact here. */
    std::string json_path;
    /** When non-empty, enable stats and write the per-point stats
     *  trees here ({"bench","points":[{"label","stats":{...}}]}). */
    std::string stats_path;
    /** When non-empty, enable tracing and write a Chrome
     *  trace_event JSON here (one pid per sweep point). */
    std::string trace_path;
    /** When non-empty, enable request-span tracing and write the
     *  merged Chrome span document here (one pid per point). */
    std::string span_path;
    /** When non-empty, enable the flight recorder and write its
     *  dump artifact here ({"bench","points":[{"label",
     *  "flightrec":{...}}]}). */
    std::string flightrec_path;
    /** Armed flight-recorder trigger mask from `--fr-trigger`
     *  (obs::frTriggerBit bits); 0 arms every trigger whenever the
     *  flight recorder is forced on by @ref flightrec_path. */
    std::uint32_t fr_armed = 0;
    /** When > 0, arm the SLO monitor at this p99 target for every
     *  point that does not already set its own target. */
    double slo_p99_us = 0.0;
    /** `--governor on|off`: force the core-scaling governor on (or
     *  off) for every point; unset leaves each point's config alone. */
    std::optional<bool> governor;
    /** `--gov-epoch US`: governor epoch override, microseconds. */
    std::optional<double> gov_epoch_us;
    /** Bench name recorded in the artifact. */
    std::string bench_name = "sweep";
};

/**
 * The one place bench/CLI flags are declared (DESIGN.md §15): each
 * binary registers its flags once — name, metavar, help line, parse
 * callback — and gets uniform `--help` text and the strict malformed-
 * value contract (diagnostic + exit 2) for free. registerSweepFlags()
 * adds the shared sweep set, so a flag like `--governor` registers in
 * one line and appears in every binary's help.
 */
class ArgRegistrar
{
  public:
    explicit ArgRegistrar(std::string prog, std::string description = "")
        : prog_(std::move(prog)), description_(std::move(description))
    {
    }

    /** Option taking one operand: `--name VALUE`. @p parse returns an
     *  error message, or empty on success. */
    void value(std::string name, std::string metavar, std::string help,
               std::function<std::string(const std::string &)> parse);

    /** Bare boolean option: `--name`. */
    void flag(std::string name, std::string help,
              std::function<void()> set);

    /**
     * Parse @p argv. `--help`/`-h` prints the registered usage and
     * exits 0; an unknown option, a missing operand, or a parse error
     * prints a diagnostic plus usage and exits 2 (the strict contract
     * every bench already relied on).
     */
    void parse(int argc, char **argv) const;

    void printUsage(std::FILE *out) const;

  private:
    struct Opt
    {
        std::string name;
        std::string metavar;   //!< empty for bare flags
        std::string help;
        std::function<std::string(const std::string &)> parse;
        std::function<void()> set;
    };

    std::string prog_;
    std::string description_;
    std::vector<Opt> opts_;
};

/**
 * Register the shared sweep/CLI flag set against @p opts:
 * `--threads N|all`, `--json PATH`, `--stats-out PATH`,
 * `--trace PATH`, `--trace-spans PATH`, `--flightrec PATH`,
 * `--fr-trigger LIST`, `--slo-p99 US`, `--governor on|off`, and
 * `--gov-epoch US`.
 */
void registerSweepFlags(ArgRegistrar &reg, SweepOptions &opts);

/**
 * Just the power-policy subset (`--governor on|off`, `--gov-epoch US`)
 * for binaries that are not sweeps (halsim_cli). Included in
 * registerSweepFlags(); declared separately so the flags are defined
 * in exactly one place either way.
 */
void registerPowerFlags(ArgRegistrar &reg, SweepOptions &opts);

/** Apply parsed power flags to a config (no-op for unset options). */
void applyPowerFlags(const SweepOptions &opts, ServerConfig &cfg);

/**
 * Run every point (possibly in parallel) and return results in input
 * order. Writes the JSON artifacts named by opts.json_path /
 * opts.stats_path / opts.trace_path / opts.span_path /
 * opts.flightrec_path; all but the first force the corresponding
 * ObsConfig flag on for every point. Artifacts are byte-deterministic
 * for a given point list (no wall-clock content).
 */
std::vector<RunResult> runSweep(const std::vector<SweepPoint> &points,
                                const SweepOptions &opts = {});

/**
 * Parse exactly the registerSweepFlags() set (a thin wrapper over
 * ArgRegistrar). The HALSIM_THREADS environment variable (same
 * grammar, see core::envDefaultThreads) supplies the default thread
 * count when the flag is absent. Malformed values — negative, zero,
 * or non-numeric counts, bad on|off — are rejected with a diagnostic
 * and exit code 2, as are unknown arguments; `--help` exits 0.
 */
SweepOptions parseSweepArgs(int argc, char **argv,
                            std::string bench_name);

/** One flat results row: the point's labeling fields (label, mode,
 *  function, rate_gbps) spliced with every RunResult field. */
std::string sweepRowJson(const SweepPoint &point, const RunResult &r);

/**
 * Write a results artifact: one flat sweepRowJson() row per point
 * under {"bench","threads","points":[...]}.
 */
void writeSweepJson(const std::string &path,
                    const std::string &bench_name,
                    const std::vector<SweepPoint> &points,
                    const std::vector<RunResult> &results,
                    unsigned threads);

} // namespace halsim::core

#endif // HALSIM_CORE_SWEEP_HH
