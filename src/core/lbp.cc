#include "core/lbp.hh"

#include <algorithm>
#include <utility>

#include "sim/rng.hh"

namespace halsim::core {

LoadBalancingPolicy::LoadBalancingPolicy(EventQueue &eq, Config cfg,
                                         proc::Processor &snic,
                                         TrafficDirector &director)
    : eq_(eq), cfg_(cfg), snic_(snic), director_(director),
      fwdTh_(cfg.initial_fwd_gbps)
{
    tickEvent_.setCallback([this] { tick(); });
}

LoadBalancingPolicy::~LoadBalancingPolicy()
{
    stop();
}

void
LoadBalancingPolicy::start()
{
    lastBytes_ = snic_.processedBytes();
    director_.setFwdTh(fwdTh_);
    if (!tickEvent_.scheduled())
        eq_.scheduleIn(&tickEvent_, cfg_.epoch);
}

void
LoadBalancingPolicy::stop()
{
    if (tickEvent_.scheduled())
        eq_.deschedule(&tickEvent_);
}

void
LoadBalancingPolicy::setControlImpairment(double loss_prob,
                                          Tick extra_delay, Rng *rng)
{
    ctrlLoss_ = loss_prob;
    ctrlExtraDelay_ = extra_delay;
    ctrlRng_ = rng;
}

void
LoadBalancingPolicy::clearControlImpairment()
{
    ctrlLoss_ = 0.0;
    ctrlExtraDelay_ = 0;
    ctrlRng_ = nullptr;
}

void
LoadBalancingPolicy::setStalled(bool stalled)
{
    if (stalled_ == stalled)
        return;
    stalled_ = stalled;
    if (stalled) {
        if (tickEvent_.scheduled())
            eq_.deschedule(&tickEvent_);
    } else {
        // Resume with a fresh throughput baseline so the first epoch
        // after the hang doesn't read the whole outage as one burst.
        lastBytes_ = snic_.processedBytes();
        if (!tickEvent_.scheduled())
            eq_.scheduleIn(&tickEvent_, cfg_.epoch);
    }
}

bool
LoadBalancingPolicy::sendCtrl(std::function<void()> fn)
{
    if (ctrlRng_ != nullptr && ctrlLoss_ > 0.0 &&
        ctrlRng_->chance(ctrlLoss_)) {
        ++updatesDropped_;
        return false;
    }
    eq_.scheduleFnIn(std::move(fn), cfg_.comms_latency + ctrlExtraDelay_);
    return true;
}

void
LoadBalancingPolicy::tick()
{
    if (stalled_)
        return;
    ++epochs_;
    bool update_sent = false;
    // SNIC_TP: accumulated rx_burst returns over the epoch.
    const std::uint64_t bytes = snic_.processedBytes();
    snicTp_ = gbps(bytes - lastBytes_, cfg_.epoch);
    lastBytes_ = bytes;

    // Algorithm 1: only act when Fwd_Th has converged down to the
    // achieved throughput (the SNIC is the binding constraint).
    const double before = fwdTh_;
    if (fwdTh_ < snicTp_ + cfg_.delta_tp_gbps) {
        const std::uint32_t occ = snic_.maxRingOccupancy();
        double step = cfg_.step_gbps;
        if (cfg_.adaptive_step) {
            // Optional extension (§V-B): scale the step with how far
            // the occupancy sits from the watermark band.
            if (occ > cfg_.wm_high)
                step *= 1.0 + static_cast<double>(occ - cfg_.wm_high) /
                                  cfg_.wm_high;
            else if (occ < cfg_.wm_low && occ == 0)
                step *= 2.0;
        }
        if (occ < cfg_.wm_low)
            fwdTh_ += step;
        else if (occ > cfg_.wm_high)
            fwdTh_ -= step;
        fwdTh_ = std::clamp(fwdTh_, cfg_.min_fwd_gbps, cfg_.max_fwd_gbps);
    }
    if (capacity_) {
        // Governor co-design: never steer more at the SNIC than its
        // currently-active cores can serve (floored at min_fwd so the
        // threshold stays actionable). Applied outside the convergence
        // branch on purpose: when load falls off a converged-high
        // threshold, Algorithm 1 goes quiet, but the governor keeps
        // parking — the clamp must track the shrinking active set, or
        // the frozen threshold would steer a returning burst at cores
        // that are asleep.
        fwdTh_ = std::min(fwdTh_, std::max(cfg_.min_fwd_gbps, capacity_()));
    }
    if (fwdTh_ > before)
        ++ups_;
    else if (fwdTh_ < before)
        ++downs_;
    if (fwdTh_ != before) {
        // The decision travels to the FPGA over Ethernet (and may
        // be lost or delayed on an impaired channel).
        const double decided = fwdTh_;
        update_sent = sendCtrl(
            [this, decided] { director_.setFwdTh(decided); });
    }
    // Keep-alive toward the FPGA when no update went out this epoch,
    // so the watchdog's staleness bound measures channel/LBP health
    // rather than threshold convergence.
    if (!update_sent && sendCtrl([this] { director_.heartbeat(); }))
        ++heartbeats_;
    eq_.scheduleIn(&tickEvent_, cfg_.epoch);
}

} // namespace halsim::core
