#include "core/sweep.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "core/config.hh"
#include "funcs/registry.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "sim/parallel.hh"

namespace halsim::core {

std::string
sweepRowJson(const SweepPoint &point, const RunResult &r)
{
    std::ostringstream os;
    os << "{\"label\":\"" << obs::jsonEscape(point.label) << "\""
       << ",\"mode\":\"" << modeName(point.cfg.mode) << "\""
       << ",\"function\":\"" << funcs::functionName(point.cfg.function)
       << "\",\"rate_gbps\":"
       << obs::jsonNumber(point.trace ? 0.0 : point.rate_gbps) << ",";
    r.toJsonFields(os);
    os << "}";
    return os.str();
}

std::vector<RunResult>
runSweep(const std::vector<SweepPoint> &points, const SweepOptions &opts)
{
    const bool want_stats = !opts.stats_path.empty();
    const bool want_trace = !opts.trace_path.empty();

    std::vector<RunResult> results(points.size());
    std::vector<std::string> stats(points.size());
    std::vector<std::string> traces(points.size());
    parallelFor(points.size(), opts.threads, [&](std::size_t i) {
        SweepPoint p = points[i];
        p.cfg.obs.stats = p.cfg.obs.stats || want_stats;
        p.cfg.obs.trace = p.cfg.obs.trace || want_trace;
        if (opts.slo_p99_us > 0.0 && !p.cfg.slo.enabled())
            p.cfg.slo.target_p99_us = opts.slo_p99_us;
        EventQueue eq;
        ServerSystem sys(eq, p.cfg);
        auto rate = p.trace
                        ? net::makeTrace(*p.trace)
                        : std::make_unique<net::ConstantRate>(p.rate_gbps);
        results[i] =
            sys.run(std::move(rate), p.warmup, p.measure, p.resample);
        if (want_stats && sys.obs() != nullptr) {
            std::ostringstream os;
            sys.obs()->writeStatsJson(os);
            stats[i] = os.str();
        }
        if (want_trace && sys.obs() != nullptr &&
            sys.obs()->tracer() != nullptr) {
            std::ostringstream os;
            bool first = true;
            sys.obs()->tracer()->writeChromeEvents(
                os, static_cast<int>(i), first);
            traces[i] = os.str();
        }
    });

    if (!opts.json_path.empty())
        writeSweepJson(opts.json_path, opts.bench_name, points, results,
                       opts.threads);
    if (want_stats || want_trace) {
        obs::SweepReport rep(opts.bench_name, opts.threads);
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (want_stats)
                rep.addStats(points[i].label, stats[i]);
            if (want_trace)
                rep.addTraceEvents(traces[i]);
        }
        if (want_stats)
            rep.saveStatsJson(opts.stats_path);
        if (want_trace)
            rep.saveTraceJson(opts.trace_path);
    }
    return results;
}

SweepOptions
parseSweepArgs(int argc, char **argv, std::string bench_name)
{
    SweepOptions opts;
    opts.bench_name = std::move(bench_name);
    opts.threads = envDefaultThreads(opts.threads);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            std::string error;
            const auto parsed = parseThreadsValue(argv[++i], &error);
            if (!parsed) {
                std::fprintf(stderr, "%s: --threads: %s\n", argv[0],
                             error.c_str());
                std::exit(2);
            }
            opts.threads = *parsed;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--stats-out") == 0 &&
                   i + 1 < argc) {
            opts.stats_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            opts.trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--slo-p99") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            const double us = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || !(us > 0.0)) {
                std::fprintf(stderr,
                             "%s: --slo-p99 needs a positive "
                             "microsecond target, got '%s'\n",
                             argv[0], argv[i]);
                std::exit(2);
            }
            opts.slo_p99_us = us;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--threads N|all] [--json PATH]\n"
                "          [--stats-out PATH] [--trace PATH]\n"
                "          [--slo-p99 US]\n"
                "  --threads all uses every hardware thread\n"
                "  --stats-out writes the per-point stats trees\n"
                "  --trace writes a Chrome trace_event JSON\n"
                "  --slo-p99 arms the SLO monitor at a p99 target\n",
                argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

void
writeSweepJson(const std::string &path, const std::string &bench_name,
               const std::vector<SweepPoint> &points,
               const std::vector<RunResult> &results, unsigned threads)
{
    obs::SweepReport rep(bench_name, threads);
    for (std::size_t i = 0; i < points.size(); ++i)
        rep.addRow(sweepRowJson(points[i], results[i]));
    rep.saveResultsJson(path);
}

} // namespace halsim::core
