#include "core/sweep.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/config.hh"
#include "funcs/registry.hh"
#include "sim/parallel.hh"

namespace halsim::core {

std::vector<RunResult>
runSweep(const std::vector<SweepPoint> &points, const SweepOptions &opts)
{
    std::vector<RunResult> results(points.size());
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(points.size(), opts.threads, [&](std::size_t i) {
        const SweepPoint &p = points[i];
        EventQueue eq;
        ServerSystem sys(eq, p.cfg);
        auto rate = p.trace
                        ? net::makeTrace(*p.trace)
                        : std::make_unique<net::ConstantRate>(p.rate_gbps);
        results[i] =
            sys.run(std::move(rate), p.warmup, p.measure, p.resample);
    });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    if (!opts.json_path.empty())
        writeSweepJson(opts.json_path, opts.bench_name, points, results,
                       wall, opts.threads);
    return results;
}

SweepOptions
parseSweepArgs(int argc, char **argv, std::string bench_name)
{
    SweepOptions opts;
    opts.bench_name = std::move(bench_name);
    opts.threads = envDefaultThreads(opts.threads);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            std::string error;
            const auto parsed = parseThreadsValue(argv[++i], &error);
            if (!parsed) {
                std::fprintf(stderr, "%s: --threads: %s\n", argv[0],
                             error.c_str());
                std::exit(2);
            }
            opts.threads = *parsed;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--threads N|all] [--json PATH]\n"
                         "  --threads all uses every hardware thread\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

void
writeSweepJson(const std::string &path, const std::string &bench_name,
               const std::vector<SweepPoint> &points,
               const std::vector<RunResult> &results,
               double wall_seconds, unsigned threads)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "sweep: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"wall_seconds\": %.3f,\n"
                 "  \"points\": [\n",
                 bench_name.c_str(), threads, wall_seconds);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        const RunResult &r = results[i];
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"mode\": \"%s\", "
            "\"function\": \"%s\", \"rate_gbps\": %.3f, "
            "\"offered_gbps\": %.4f, \"delivered_gbps\": %.4f, "
            "\"max_window_gbps\": %.4f, \"p99_us\": %.4f, "
            "\"mean_us\": %.4f, \"system_power_w\": %.4f, "
            "\"dynamic_power_w\": %.4f, \"energy_eff\": %.6f, "
            "\"sent\": %" PRIu64 ", \"responses\": %" PRIu64 ", "
            "\"drops\": %" PRIu64 ", \"snic_frames\": %" PRIu64 ", "
            "\"host_frames\": %" PRIu64 ", "
            "\"final_fwd_th_gbps\": %.4f, "
            "\"faults_injected\": %" PRIu64 ", "
            "\"failovers\": %" PRIu64 ", "
            "\"recoveries\": %" PRIu64 "}%s\n",
            p.label.c_str(), modeName(p.cfg.mode),
            funcs::functionName(p.cfg.function),
            p.trace ? 0.0 : p.rate_gbps, r.offered_gbps,
            r.delivered_gbps, r.max_window_gbps, r.p99_us, r.mean_us,
            r.system_power_w, r.dynamic_power_w, r.energy_eff, r.sent,
            r.responses, r.drops, r.snic_frames, r.host_frames,
            r.final_fwd_th_gbps, r.faults_injected, r.failovers,
            r.recoveries, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace halsim::core
