#include "core/sweep.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "core/config.hh"
#include "funcs/registry.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/span.hh"
#include "sim/parallel.hh"

namespace halsim::core {

std::string
sweepRowJson(const SweepPoint &point, const RunResult &r)
{
    std::ostringstream os;
    os << "{\"label\":\"" << obs::jsonEscape(point.label) << "\""
       << ",\"mode\":\"" << modeName(point.cfg.mode) << "\""
       << ",\"function\":\"" << funcs::functionName(point.cfg.function)
       << "\",\"rate_gbps\":"
       << obs::jsonNumber(point.trace ? 0.0 : point.rate_gbps) << ",";
    r.toJsonFields(os);
    os << "}";
    return os.str();
}

std::vector<RunResult>
runSweep(const std::vector<SweepPoint> &points, const SweepOptions &opts)
{
    const bool want_stats = !opts.stats_path.empty();
    const bool want_trace = !opts.trace_path.empty();
    const bool want_spans = !opts.span_path.empty();
    const bool want_fr = !opts.flightrec_path.empty();

    std::vector<RunResult> results(points.size());
    std::vector<std::string> stats(points.size());
    std::vector<std::string> traces(points.size());
    std::vector<std::string> spans(points.size());
    std::vector<std::string> frs(points.size());
    parallelFor(points.size(), opts.threads, [&](std::size_t i) {
        SweepPoint p = points[i];
        p.cfg.obs.stats = p.cfg.obs.stats || want_stats;
        // Server-side span content is the bridged packet-stage
        // records, so --trace-spans needs the packet tracer live too.
        p.cfg.obs.trace = p.cfg.obs.trace || want_trace || want_spans;
        p.cfg.obs.spans = p.cfg.obs.spans || want_spans;
        if (want_fr) {
            p.cfg.obs.flightrec = true;
            if (opts.fr_armed != 0)
                p.cfg.obs.fr_armed = opts.fr_armed;
            else if (p.cfg.obs.fr_armed == 0)
                p.cfg.obs.fr_armed =
                    (1u << obs::kFrTriggerKinds) - 1;
        }
        if (opts.slo_p99_us > 0.0 && !p.cfg.slo.enabled())
            p.cfg.slo.target_p99_us = opts.slo_p99_us;
        applyPowerFlags(opts, p.cfg);
        EventQueue eq;
        ServerSystem sys(eq, p.cfg);
        std::unique_ptr<net::RateProcess> rate;
        if (p.make_rate)
            rate = p.make_rate();
        else if (p.trace)
            rate = net::makeTrace(*p.trace);
        else
            rate = std::make_unique<net::ConstantRate>(p.rate_gbps);
        results[i] =
            sys.run(std::move(rate), p.warmup, p.measure, p.resample);
        if (want_stats && sys.obs() != nullptr) {
            std::ostringstream os;
            sys.obs()->writeStatsJson(os);
            stats[i] = os.str();
        }
        if (want_trace && sys.obs() != nullptr &&
            sys.obs()->tracer() != nullptr) {
            std::ostringstream os;
            bool first = true;
            sys.obs()->tracer()->writeChromeEvents(
                os, static_cast<int>(i), first);
            traces[i] = os.str();
        }
        if (want_spans && sys.obs() != nullptr &&
            sys.obs()->spans() != nullptr) {
            std::ostringstream os;
            bool first = true;
            sys.obs()->spans()->writeChromeEvents(
                os, static_cast<int>(i), first);
            spans[i] = os.str();
        }
        if (want_fr && sys.obs() != nullptr &&
            sys.obs()->flightRecorder() != nullptr) {
            std::ostringstream os;
            sys.obs()->flightRecorder()->writeJson(os);
            frs[i] = os.str();
        }
    });

    if (!opts.json_path.empty())
        writeSweepJson(opts.json_path, opts.bench_name, points, results,
                       opts.threads);
    if (want_stats || want_trace || want_spans || want_fr) {
        obs::SweepReport rep(opts.bench_name, opts.threads);
        if (!points.empty()) {
            rep.setTraceMetadata(modeName(points[0].cfg.mode),
                                 points[0].cfg.seed);
        }
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (want_stats)
                rep.addStats(points[i].label, stats[i]);
            if (want_trace)
                rep.addTraceEvents(traces[i]);
            if (want_fr)
                rep.addFlightRec(points[i].label, frs[i]);
        }
        if (want_stats)
            rep.saveStatsJson(opts.stats_path);
        if (want_trace)
            rep.saveTraceJson(opts.trace_path);
        if (want_fr)
            rep.saveFlightRecJson(opts.flightrec_path);
        if (want_spans) {
            // Span events live in their own document: span rows use
            // the same pid space as the packet-stage rows, so merging
            // them into the --trace artifact would collide tids.
            obs::SweepReport spanRep(opts.bench_name, opts.threads);
            if (!points.empty()) {
                spanRep.setTraceMetadata(
                    modeName(points[0].cfg.mode), points[0].cfg.seed);
            }
            for (std::size_t i = 0; i < points.size(); ++i)
                spanRep.addTraceEvents(spans[i]);
            spanRep.saveTraceJson(opts.span_path);
        }
    }
    return results;
}

void
ArgRegistrar::value(std::string name, std::string metavar,
                    std::string help,
                    std::function<std::string(const std::string &)> parse)
{
    Opt o;
    o.name = std::move(name);
    o.metavar = std::move(metavar);
    o.help = std::move(help);
    o.parse = std::move(parse);
    opts_.push_back(std::move(o));
}

void
ArgRegistrar::flag(std::string name, std::string help,
                   std::function<void()> set)
{
    Opt o;
    o.name = std::move(name);
    o.help = std::move(help);
    o.set = std::move(set);
    opts_.push_back(std::move(o));
}

void
ArgRegistrar::printUsage(std::FILE *out) const
{
    std::fprintf(out, "usage: %s", prog_.c_str());
    for (const Opt &o : opts_) {
        if (o.metavar.empty())
            std::fprintf(out, " [%s]", o.name.c_str());
        else
            std::fprintf(out, " [%s %s]", o.name.c_str(),
                         o.metavar.c_str());
    }
    std::fprintf(out, "\n");
    if (!description_.empty())
        std::fprintf(out, "%s\n", description_.c_str());
    for (const Opt &o : opts_) {
        std::string left = o.name;
        if (!o.metavar.empty())
            left += " " + o.metavar;
        std::fprintf(out, "  %-22s %s\n", left.c_str(), o.help.c_str());
    }
}

void
ArgRegistrar::parse(int argc, char **argv) const
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            std::exit(0);
        }
        const Opt *match = nullptr;
        for (const Opt &o : opts_) {
            if (o.name == arg) {
                match = &o;
                break;
            }
        }
        if (match == nullptr) {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         prog_.c_str(), arg.c_str());
            printUsage(stderr);
            std::exit(2);
        }
        if (match->parse) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a %s operand\n",
                             prog_.c_str(), match->name.c_str(),
                             match->metavar.c_str());
                printUsage(stderr);
                std::exit(2);
            }
            const std::string error = match->parse(argv[++i]);
            if (!error.empty()) {
                std::fprintf(stderr, "%s: %s: %s\n", prog_.c_str(),
                             match->name.c_str(), error.c_str());
                std::exit(2);
            }
        } else {
            match->set();
        }
    }
}

void
registerSweepFlags(ArgRegistrar &reg, SweepOptions &opts)
{
    reg.value("--threads", "N|all",
              "sweep worker threads (all = every hardware thread)",
              [&opts](const std::string &v) -> std::string {
                  std::string error;
                  const auto parsed = parseThreadsValue(v.c_str(), &error);
                  if (!parsed)
                      return error;
                  opts.threads = *parsed;
                  return {};
              });
    reg.value("--json", "PATH", "write the results artifact here",
              [&opts](const std::string &v) -> std::string {
                  opts.json_path = v;
                  return {};
              });
    reg.value("--stats-out", "PATH",
              "write the per-point stats trees here",
              [&opts](const std::string &v) -> std::string {
                  opts.stats_path = v;
                  return {};
              });
    reg.value("--trace", "PATH", "write a Chrome trace_event JSON here",
              [&opts](const std::string &v) -> std::string {
                  opts.trace_path = v;
                  return {};
              });
    reg.value("--trace-spans", "PATH",
              "write the request-span Chrome trace_event JSON here",
              [&opts](const std::string &v) -> std::string {
                  opts.span_path = v;
                  return {};
              });
    reg.value("--flightrec", "PATH",
              "enable the flight recorder and write its dumps here",
              [&opts](const std::string &v) -> std::string {
                  opts.flightrec_path = v;
                  return {};
              });
    reg.value(
        "--fr-trigger", "LIST",
        "arm flight-recorder triggers: comma-separated subset of "
        "fault,slo,shed,gov, or all",
        [&opts](const std::string &v) -> std::string {
            std::uint32_t mask = 0;
            std::size_t pos = 0;
            for (;;) {
                const std::size_t comma = v.find(',', pos);
                const std::string tok =
                    comma == std::string::npos
                        ? v.substr(pos)
                        : v.substr(pos, comma - pos);
                if (tok == "all")
                    mask |= (1u << obs::kFrTriggerKinds) - 1;
                else if (tok == "fault")
                    mask |= obs::frTriggerBit(obs::FrTrigger::Fault);
                else if (tok == "slo")
                    mask |= obs::frTriggerBit(obs::FrTrigger::Slo);
                else if (tok == "shed")
                    mask |= obs::frTriggerBit(obs::FrTrigger::Shed);
                else if (tok == "gov")
                    mask |= obs::frTriggerBit(obs::FrTrigger::Gov);
                else
                    return "unknown trigger '" + tok +
                           "' (want fault, slo, shed, gov, or all)";
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            opts.fr_armed = mask;
            return {};
        });
    reg.value("--slo-p99", "US",
              "arm the SLO monitor at this p99 target (microseconds)",
              [&opts](const std::string &v) -> std::string {
                  char *end = nullptr;
                  const double us = std::strtod(v.c_str(), &end);
                  if (end == nullptr || *end != '\0' || !(us > 0.0)) {
                      return "needs a positive microsecond target, "
                             "got '" +
                             v + "'";
                  }
                  opts.slo_p99_us = us;
                  return {};
              });
    registerPowerFlags(reg, opts);
}

void
registerPowerFlags(ArgRegistrar &reg, SweepOptions &opts)
{
    reg.value("--governor", "on|off",
              "force the core-scaling governor on or off",
              [&opts](const std::string &v) -> std::string {
                  if (v == "on")
                      opts.governor = true;
                  else if (v == "off")
                      opts.governor = false;
                  else
                      return "needs on or off, got '" + v + "'";
                  return {};
              });
    reg.value("--gov-epoch", "US",
              "governor epoch in microseconds (implies nothing else)",
              [&opts](const std::string &v) -> std::string {
                  char *end = nullptr;
                  const double us = std::strtod(v.c_str(), &end);
                  if (end == nullptr || *end != '\0' || !(us > 0.0)) {
                      return "needs a positive microsecond epoch, "
                             "got '" +
                             v + "'";
                  }
                  opts.gov_epoch_us = us;
                  return {};
              });
}

void
applyPowerFlags(const SweepOptions &opts, ServerConfig &cfg)
{
    if (opts.governor)
        cfg.power.governor.enabled = *opts.governor;
    if (opts.gov_epoch_us) {
        cfg.power.governor.epoch = static_cast<Tick>(
            *opts.gov_epoch_us * static_cast<double>(kUs));
    }
}

SweepOptions
parseSweepArgs(int argc, char **argv, std::string bench_name)
{
    SweepOptions opts;
    opts.bench_name = std::move(bench_name);
    opts.threads = envDefaultThreads(opts.threads);
    ArgRegistrar reg(argv[0]);
    registerSweepFlags(reg, opts);
    reg.parse(argc, argv);
    return opts;
}

void
writeSweepJson(const std::string &path, const std::string &bench_name,
               const std::vector<SweepPoint> &points,
               const std::vector<RunResult> &results, unsigned threads)
{
    obs::SweepReport rep(bench_name, threads);
    for (std::size_t i = 0; i < points.size(); ++i)
        rep.addRow(sweepRowJson(points[i], results[i]));
    rep.saveResultsJson(path);
}

} // namespace halsim::core
