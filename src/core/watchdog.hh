/**
 * @file
 * Health watchdog and degraded-mode state machine.
 *
 * Every epoch the watchdog samples processor liveness and ring
 * occupancy and the freshness of the LBP->FPGA control channel, then
 * drives the director into (or out of) a degraded mode:
 *
 *  - HostDown:  the host processor stopped — clamp Fwd_Th to the
 *    maximum so all traffic stays on the SNIC instead of being
 *    diverted into a black hole;
 *  - SnicDown:  the SNIC cores stopped — pin Fwd_Th to zero so the
 *    director diverts everything to the host, and wake its sleeping
 *    cores immediately so the first diverted packets do not pay the
 *    per-packet wake penalty;
 *  - AllDown:   both processors stopped; route to the host (it is at
 *    least as likely to return) and keep sampling for recovery;
 *  - LbpSilent: neither updates nor heartbeats arrived within the
 *    staleness bound — the policy core or its channel is gone; fall
 *    back to a conservative failsafe threshold rather than trusting
 *    a stale operating point.
 *
 * When health returns the watchdog hands control back to the LBP by
 * restoring its last-known-good threshold. Failovers, recoveries,
 * time spent degraded, and packets lost while degraded are tracked
 * for RunResult.
 */

#ifndef HALSIM_CORE_WATCHDOG_HH
#define HALSIM_CORE_WATCHDOG_HH

#include <cstdint>
#include <functional>

#include "core/hlb.hh"
#include "core/lbp.hh"
#include "proc/processor.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"

namespace halsim::core {

/** Degraded-mode states. */
enum class HealthState : std::uint8_t
{
    Normal,
    HostDown,
    SnicDown,
    AllDown,
    LbpSilent,
};

const char *healthStateName(HealthState s);

class HealthWatchdog
{
  public:
    struct Config
    {
        bool enabled = true;
        /** Liveness/occupancy sampling period. */
        Tick epoch = 200 * kUs;
        /** Control channel silent longer than this => LbpSilent. */
        Tick lbp_staleness_bound = 1 * kMs;
        /** Threshold applied while LbpSilent; 0 = the LBP's initial
         *  threshold (resolved by ServerSystem). */
        double lbp_failsafe_gbps = 0.0;
        /** Threshold applied while HostDown (keep all on the SNIC). */
        double host_down_fwd_gbps = kMaxFwdThGbps;
        /** Threshold applied while SnicDown (divert all to host). */
        double snic_down_fwd_gbps = 0.0;
    };

    struct Stats
    {
        std::uint64_t epochs = 0;
        /** Transitions out of Normal. */
        std::uint64_t failovers = 0;
        /** Transitions back to Normal. */
        std::uint64_t recoveries = 0;
        /** Total time spent outside Normal. */
        Tick degraded = 0;
        /** Detect -> recover latency of the last closed incident. */
        Tick last_recovery_latency = 0;
        /** Drops accumulated while outside Normal. */
        std::uint64_t degraded_drops = 0;
        /** Peak Rx-ring occupancy observed across both processors. */
        std::uint32_t peak_ring_occupancy = 0;
    };

    /**
     * Any of @p snic / @p host / @p director / @p lbp may be null;
     * the corresponding checks and actions are skipped.
     * @p drop_count samples the system-wide drop total, used to
     * attribute losses to degraded intervals.
     */
    HealthWatchdog(EventQueue &eq, Config cfg, proc::Processor *snic,
                   proc::Processor *host, TrafficDirector *director,
                   LoadBalancingPolicy *lbp,
                   std::function<std::uint64_t()> drop_count);
    ~HealthWatchdog();

    HealthWatchdog(const HealthWatchdog &) = delete;
    HealthWatchdog &operator=(const HealthWatchdog &) = delete;

    void start();

    /** Stop sampling; closes any open degraded interval so the stats
     *  account for an outage still in progress at run end. */
    void stop();

    HealthState state() const { return state_; }
    const Stats &stats() const { return stats_; }

    /** Zero the counters for a fresh run (state machine state and any
     *  open degraded interval are preserved). */
    void resetStats() { stats_ = Stats{}; }

  private:
    void tick();
    void transition(HealthState next);
    void applyActions(HealthState s);
    std::uint64_t sampleDrops() const;

    EventQueue &eq_;
    Config cfg_;
    proc::Processor *snic_;
    proc::Processor *host_;
    TrafficDirector *director_;
    LoadBalancingPolicy *lbp_;
    std::function<std::uint64_t()> dropCount_;

    CallbackEvent tickEvent_;
    HealthState state_ = HealthState::Normal;
    Stats stats_;
    bool intervalOpen_ = false;
    Tick degradedSince_ = 0;
    std::uint64_t dropsAtEntry_ = 0;
};

} // namespace halsim::core

#endif // HALSIM_CORE_WATCHDOG_HH
