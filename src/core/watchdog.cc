#include "core/watchdog.hh"

#include <algorithm>

namespace halsim::core {

const char *
healthStateName(HealthState s)
{
    switch (s) {
      case HealthState::Normal: return "normal";
      case HealthState::HostDown: return "host-down";
      case HealthState::SnicDown: return "snic-down";
      case HealthState::AllDown: return "all-down";
      case HealthState::LbpSilent: return "lbp-silent";
    }
    return "?";
}

HealthWatchdog::HealthWatchdog(EventQueue &eq, Config cfg,
                               proc::Processor *snic,
                               proc::Processor *host,
                               TrafficDirector *director,
                               LoadBalancingPolicy *lbp,
                               std::function<std::uint64_t()> drop_count)
    : eq_(eq), cfg_(cfg), snic_(snic), host_(host), director_(director),
      lbp_(lbp), dropCount_(std::move(drop_count))
{
    tickEvent_.setCallback([this] { tick(); });
}

HealthWatchdog::~HealthWatchdog()
{
    if (tickEvent_.scheduled())
        eq_.deschedule(&tickEvent_);
}

void
HealthWatchdog::start()
{
    if (!tickEvent_.scheduled())
        eq_.scheduleIn(&tickEvent_, cfg_.epoch);
}

void
HealthWatchdog::stop()
{
    if (tickEvent_.scheduled())
        eq_.deschedule(&tickEvent_);
    if (intervalOpen_) {
        // Close an outage still in progress so degraded time and
        // drops are accounted; it did not recover, so recoveries and
        // the recovery latency stay untouched.
        stats_.degraded += eq_.now() - degradedSince_;
        stats_.degraded_drops += sampleDrops() - dropsAtEntry_;
        intervalOpen_ = false;
    }
}

std::uint64_t
HealthWatchdog::sampleDrops() const
{
    return dropCount_ ? dropCount_() : 0;
}

void
HealthWatchdog::tick()
{
    ++stats_.epochs;

    std::uint32_t occ = 0;
    if (snic_ != nullptr)
        occ = std::max(occ, snic_->maxRingOccupancy());
    if (host_ != nullptr)
        occ = std::max(occ, host_->maxRingOccupancy());
    stats_.peak_ring_occupancy = std::max(stats_.peak_ring_occupancy, occ);

    const bool snic_ok = snic_ == nullptr || snic_->alive();
    const bool host_ok = host_ == nullptr || host_->alive();

    HealthState want = HealthState::Normal;
    if (!snic_ok && !host_ok) {
        want = HealthState::AllDown;
    } else if (!host_ok) {
        want = HealthState::HostDown;
    } else if (!snic_ok) {
        want = HealthState::SnicDown;
    } else if (lbp_ != nullptr && director_ != nullptr &&
               eq_.now() - director_->lastUpdateTick() >
                   cfg_.lbp_staleness_bound) {
        want = HealthState::LbpSilent;
    }

    if (want != state_)
        transition(want);
    eq_.scheduleIn(&tickEvent_, cfg_.epoch);
}

void
HealthWatchdog::transition(HealthState next)
{
    const Tick now = eq_.now();
    if (state_ == HealthState::Normal && next != HealthState::Normal) {
        ++stats_.failovers;
        degradedSince_ = now;
        dropsAtEntry_ = sampleDrops();
        intervalOpen_ = true;
    } else if (next == HealthState::Normal && intervalOpen_) {
        ++stats_.recoveries;
        stats_.last_recovery_latency = now - degradedSince_;
        stats_.degraded += now - degradedSince_;
        stats_.degraded_drops += sampleDrops() - dropsAtEntry_;
        intervalOpen_ = false;
    }
    state_ = next;
    applyActions(next);
}

void
HealthWatchdog::applyActions(HealthState s)
{
    switch (s) {
      case HealthState::Normal:
        if (director_ != nullptr)
            director_->exitFailover();
        break;
      case HealthState::HostDown:
        if (director_ != nullptr)
            director_->enterFailover(cfg_.host_down_fwd_gbps);
        break;
      case HealthState::SnicDown:
      case HealthState::AllDown:
        if (director_ != nullptr)
            director_->enterFailover(cfg_.snic_down_fwd_gbps);
        // The host cores were likely asleep at low rates; wake them
        // now so the diverted stream does not pay per-packet wake
        // penalties during the failover transient.
        if (host_ != nullptr)
            host_->forceWakeAll();
        break;
      case HealthState::LbpSilent:
        if (director_ != nullptr)
            director_->enterFailover(cfg_.lbp_failsafe_gbps);
        break;
    }
}

} // namespace halsim::core
