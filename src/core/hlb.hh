/**
 * @file
 * The hardware-based load balancer (HLB) of §V-A: traffic monitor,
 * traffic director, and traffic merger, composed into the HLB device
 * the paper prototypes on an Alveo U280 FPGA in front of the BF-2.
 *
 * All three blocks operate on real frame bytes: the director rewrites
 * destination IP/MAC and patches the IPv4 checksum incrementally; the
 * merger does the same for the source fields of host-originated
 * responses. Timing costs (the measured 800 ns round-trip addition,
 * §VII-C) are charged by the enclosing ServerSystem as fixed path
 * delays; power is the measured <0.1 W.
 */

#ifndef HALSIM_CORE_HLB_HH
#define HALSIM_CORE_HLB_HH

#include <cstdint>

#include "funcs/calibration.hh"
#include "net/packet.hh"
#include "net/packet_batch.hh"
#include "obs/hooks.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace halsim::core {

/** HLB power draw reported by Vivado (§VII-C). */
inline constexpr double kHlbPowerW = 0.1;

/**
 * Upper clamp the director enforces on any threshold it is handed —
 * the device boundary's sanity range, well above any link rate the
 * model supports, guarding against a buggy or compromised LBP.
 */
inline constexpr double kMaxFwdThGbps = 400.0;

/** How the director picks the packets to divert (§V-A / DESIGN.md). */
enum class SplitMode : std::uint8_t
{
    /** Byte-accurate token bucket refilled at Fwd_Th (default). */
    TokenBucket,
    /** Divert every k-th packet at the excess fraction, the paper's
     *  literal "round-robin" description. */
    RoundRobin,
    /**
     * Divert whole flows (by flow hash) at the excess fraction.
     * Packet-spraying splits a flow's state across both processors;
     * pinning flows keeps stateful lookups local at the cost of a
     * coarser split. An extension beyond the paper's design,
     * evaluated in bench_ablation_director.
     */
    FlowAffinity,
};

const char *splitModeName(SplitMode m);

/**
 * 1 Traffic monitor: counts received bytes and derives Rate_Rx every
 * epoch (the paper suggests ~10 us).
 */
class TrafficMonitor
{
  public:
    struct Config
    {
        Tick epoch = 10 * kUs;
    };

    TrafficMonitor(EventQueue &eq, Config cfg);
    ~TrafficMonitor();

    /** Account an arriving frame. */
    void
    onFrame(std::size_t bytes)
    {
        receivedBytes_ += bytes;
    }

    /** Rate_Rx of the last completed epoch, Gbps. */
    double rateRxGbps() const { return rateRx_; }

    void start();
    void stop();

  private:
    void tick();

    EventQueue &eq_;
    Config cfg_;
    CallbackEvent tickEvent_;
    std::uint64_t receivedBytes_ = 0;
    double rateRx_ = 0.0;
};

/**
 * 2 Traffic director: when Rate_Rx exceeds Fwd_Th, diverts the
 * excess to the host by rewriting the destination IP/MAC (with an
 * RFC 1624 checksum patch) and letting the eSwitch route it.
 */
class TrafficDirector : public net::PacketSink
{
  public:
    struct Config
    {
        net::Ipv4Addr snic_ip;
        net::Ipv4Addr host_ip;
        net::MacAddr host_mac;
        SplitMode mode = SplitMode::TokenBucket;
        double initial_fwd_th_gbps = 100.0;
        /** Token budget cap, in microseconds of Fwd_Th rate; bounds
         *  post-idle bursts to the SNIC. */
        double bucket_depth_us = 50.0;
    };

    TrafficDirector(EventQueue &eq, Config cfg, TrafficMonitor &monitor,
                    net::PacketSink &out);

    void accept(net::PacketPtr pkt) override;

    /** Threshold currently applied to traffic (Gbps). */
    double fwdThGbps() const { return fwdTh_; }

    /**
     * Set by the LBP (after its comms latency). Clamped to
     * [0, kMaxFwdThGbps] at the device boundary; non-finite values
     * are rejected outright. While a failover override is active the
     * update is recorded as last-known-good but not applied.
     */
    void setFwdTh(double gbps);

    /**
     * Control-channel liveness signal: the LBP pings the FPGA every
     * epoch even when the threshold is unchanged, so the watchdog can
     * distinguish "LBP silent/dead" from "threshold converged".
     */
    void heartbeat();

    /** Tick of the last LBP update or heartbeat that arrived. */
    Tick lastUpdateTick() const { return lastUpdate_; }

    /**
     * Degraded-mode override (watchdog): pin the applied threshold,
     * ignoring LBP updates until exitFailover() restores the
     * last-known-good LBP value.
     */
    void enterFailover(double gbps);
    void exitFailover();
    bool inFailover() const { return failover_; }

    std::uint64_t toSnic() const { return toSnic_; }
    std::uint64_t toHost() const { return toHost_; }

    void
    resetStats()
    {
        toSnic_ = 0;
        toHost_ = 0;
    }

  private:
    bool shouldDivert(const net::Packet &pkt);
    void refill();

    EventQueue &eq_;
    Config cfg_;
    TrafficMonitor &monitor_;
    net::PacketSink &out_;

    double fwdTh_;
    double lastLbpTh_;        //!< last-known-good LBP threshold
    Tick lastUpdate_ = 0;     //!< control-channel liveness timestamp
    bool failover_ = false;   //!< watchdog override active
    // Token-bucket state (bytes).
    double tokens_ = 0.0;
    Tick lastRefill_ = 0;
    // Round-robin state.
    double rrAccum_ = 0.0;

    std::uint64_t toSnic_ = 0;
    std::uint64_t toHost_ = 0;
};

/**
 * 3 Traffic merger: rewrites host-sourced responses to carry the
 * SNIC identity so clients see a single physical source.
 */
class TrafficMerger : public net::PacketSink
{
  public:
    struct Config
    {
        net::Ipv4Addr snic_ip;
        net::Ipv4Addr host_ip;
        net::MacAddr snic_mac;
    };

    TrafficMerger(Config cfg, net::PacketSink &out)
        : cfg_(cfg), out_(out)
    {}

    /** Attach the packet tracer (@p eq supplies timestamps): every
     *  host-sourced rewrite records TracePoint::Merge. */
    void
    setTrace(obs::PacketTracer *t, std::uint8_t lane,
             const EventQueue *eq)
    {
        trace_ = t;
        traceLane_ = lane;
        traceEq_ = eq;
    }

    void
    accept(net::PacketPtr pkt) override
    {
        if (pkt->ip().src() == cfg_.host_ip) {
            pkt->ip().rewriteSrc(cfg_.snic_ip);
            pkt->eth().setSrc(cfg_.snic_mac);
            ++merged_;
            obs::tracePacket(trace_,
                             traceEq_ != nullptr ? traceEq_->now() : 0,
                             pkt->id, obs::TracePoint::Merge,
                             traceLane_);
        }
        ++total_;
        out_.accept(std::move(pkt));
    }

    /** Burst merge: the per-packet rewrite logic in a devirtualized
     *  loop (one dispatch per burst, not per frame). */
    // halint: hotpath
    void
    acceptBatch(net::PacketBatch &&batch) override
    {
        while (!batch.empty())
            TrafficMerger::accept(batch.takeFront());
    }

    std::uint64_t merged() const { return merged_; }
    std::uint64_t total() const { return total_; }

  private:
    Config cfg_;
    net::PacketSink &out_;
    std::uint64_t merged_ = 0;
    std::uint64_t total_ = 0;

    // Observability (null/inert unless attached).
    obs::PacketTracer *trace_ = nullptr;
    std::uint8_t traceLane_ = 0;
    const EventQueue *traceEq_ = nullptr;
};

} // namespace halsim::core

#endif // HALSIM_CORE_HLB_HH
