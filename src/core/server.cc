#include "core/server.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace halsim::core {

/**
 * Collect every configuration violation in one pass, each naming the
 * offending field (a zero-core processor never polls; a
 * non-power-of-two ring breaks the DPDK model; watermarks above the
 * ring size can never trip). Callers that used to learn about errors
 * one ctor throw at a time now get the complete list.
 */
std::vector<std::string>
ServerConfig::validate() const
{
    std::vector<std::string> errors;
    auto fail = [&errors](std::string msg) {
        errors.push_back(std::move(msg));
    };

    const bool wants_host = mode != Mode::SnicOnly;
    const bool wants_snic = mode != Mode::HostOnly;
    if (wants_host && host_cores == 0)
        fail("host_cores must be > 0 in mode " +
             std::string(modeName(mode)));
    if (wants_snic && snic_cores == 0)
        fail("snic_cores must be > 0 in mode " +
             std::string(modeName(mode)));

    const std::uint32_t rd = ring_descriptors;
    if (rd == 0 || (rd & (rd - 1)) != 0) {
        fail("ring_descriptors must be a power of two, got " +
             std::to_string(rd));
    } else if (rd < lbp.wm_high) {
        fail("ring_descriptors (" + std::to_string(rd) +
             ") must be >= lbp.wm_high (" +
             std::to_string(lbp.wm_high) + ")");
    }
    if (lbp.wm_low > lbp.wm_high)
        fail("lbp.wm_low (" + std::to_string(lbp.wm_low) +
             ") must be <= lbp.wm_high (" +
             std::to_string(lbp.wm_high) + ")");

    if (!(lbp.min_fwd_gbps <= lbp.initial_fwd_gbps &&
          lbp.initial_fwd_gbps <= lbp.max_fwd_gbps)) {
        fail("lbp thresholds must satisfy min_fwd (" +
             std::to_string(lbp.min_fwd_gbps) + ") <= initial (" +
             std::to_string(lbp.initial_fwd_gbps) + ") <= max_fwd (" +
             std::to_string(lbp.max_fwd_gbps) + ")");
    }

    if (lbp.epoch <= 0)
        fail("lbp.epoch must be positive");
    if (watchdog.epoch <= 0)
        fail("watchdog.epoch must be positive");
    if (watchdog.lbp_staleness_bound <= 0)
        fail("watchdog.lbp_staleness_bound must be positive");
    if (frame_bytes == 0)
        fail("frame_bytes must be > 0");

    if (mode == Mode::Slb || mode == Mode::HostSlb) {
        if (slb_cores == 0)
            fail("slb_cores must be > 0 in mode " +
                 std::string(modeName(mode)));
        if (slb_fwd_th_gbps < 0.0)
            fail("slb_fwd_th_gbps must be >= 0");
    }

    if (slo.target_p99_us < 0.0)
        fail("slo.target_p99_us must be >= 0");
    // Unconditional: a zero epoch is degenerate whether or not the
    // monitor is armed, and arming it later (e.g. via --slo-p99)
    // must not suddenly discover a bad epoch mid-sweep.
    if (slo.epoch <= 0)
        fail("slo.epoch must be > 0");

    if (obs.enabled()) {
        if (obs.stats && obs.sample_epoch == 0)
            fail("obs.sample_epoch must be > 0 when obs.stats is on");
        if (obs.trace && obs.trace_capacity == 0)
            fail("obs.trace_capacity must be > 0 when obs.trace is on");
        if (obs.trace && obs.trace_sample_every == 0)
            fail("obs.trace_sample_every must be > 0 when obs.trace "
                 "is on");
        if (obs.spans && obs.span_capacity == 0)
            fail("obs.span_capacity must be > 0 when obs.spans is on");
        if (obs.spans && obs.span_sample_every == 0)
            fail("obs.span_sample_every must be > 0 when obs.spans "
                 "is on");
        if (obs.flightrec && obs.fr_capacity == 0)
            fail("obs.fr_capacity must be > 0 when obs.flightrec "
                 "is on");
        if (obs.flightrec && obs.fr_max_dumps == 0)
            fail("obs.fr_max_dumps must be > 0 when obs.flightrec "
                 "is on");
    }

    // The power-policy sub-struct validates itself (same
    // every-violation-in-one-pass contract); splice its messages in.
    std::vector<std::string> power_errors = power.validate();
    for (std::string &e : power_errors)
        errors.push_back(std::move(e));

    return errors;
}

ServerConfig
ServerConfig::halDefault(funcs::FunctionId fn)
{
    ServerConfig c;
    c.mode = Mode::Hal;
    c.function = fn;
    return c;
}

ServerConfig
ServerConfig::hostBaseline(funcs::FunctionId fn)
{
    ServerConfig c;
    c.mode = Mode::HostOnly;
    c.function = fn;
    return c;
}

ServerConfig
ServerConfig::snicBaseline(funcs::FunctionId fn)
{
    ServerConfig c;
    c.mode = Mode::SnicOnly;
    c.function = fn;
    return c;
}

ServerConfig
ServerConfig::slbBaseline(funcs::FunctionId fn)
{
    ServerConfig c;
    c.mode = Mode::Slb;
    c.function = fn;
    return c;
}

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::HostOnly: return "host";
      case Mode::SnicOnly: return "snic";
      case Mode::Hal: return "hal";
      case Mode::Slb: return "slb";
      case Mode::HostSlb: return "slb-host";
    }
    return "?";
}

funcs::FunctionPtr
ServerSystem::makeFn(const ServerConfig &cfg)
{
    return cfg.pipeline_second
               ? funcs::makePipeline(cfg.function, *cfg.pipeline_second)
               : funcs::makeFunction(cfg.function);
}

/**
 * The partitioned engine covers the paper's steady-state operating
 * point: the full HAL datapath with a stateless function. Anything
 * that couples the wheels outside the four packet edges — coherent
 * shared state, the watchdog's cross-component probes, fault
 * injection timers, the obs sampler — falls back to the monolithic
 * loop instead of silently racing.
 */
bool
ServerSystem::supportsPartition(const ServerConfig &cfg,
                                const funcs::NetworkFunction &fn)
{
    return cfg.run_threads > 0 && cfg.mode == Mode::Hal &&
           cfg.faults.empty() && !cfg.watchdog.enabled &&
           !cfg.obs.enabled() && !fn.stateful();
}

namespace {

std::array<std::unique_ptr<EventQueue>, 3>
makeWheelQueues(bool partitioned)
{
    std::array<std::unique_ptr<EventQueue>, 3> qs;
    if (!partitioned)
        return qs;
    // WheelBand::Mono stays the monolithic queue's; wheels take
    // Client/Snic/Host so merged same-tick keys keep the
    // (tick, band, seq) order (registry: src/sim/wheels.hh).
    static constexpr std::array<WheelBand, 3> kBands{
        WheelBand::Client, WheelBand::Snic, WheelBand::Host};
    for (std::size_t i = 0; i < qs.size(); ++i) {
        qs[i] = std::make_unique<EventQueue>();
        qs[i]->setBand(static_cast<std::uint8_t>(kBands[i]));
    }
    return qs;
}

} // namespace

ServerSystem::ServerSystem(EventQueue &eq, ServerConfig cfg)
    : eq_(eq), cfg_(cfg), rng_(cfg.seed ^ 0x5E57E4),
      clientMac_(net::MacAddr::fromUint(0x020000000001)),
      snicMac_(net::MacAddr::fromUint(0x020000000002)),
      hostMac_(net::MacAddr::fromUint(0x020000000003)),
      clientIp_(10, 0, 0, 1), snicIp_(10, 0, 0, 2), hostIp_(10, 0, 0, 3),
      fn_(makeFn(cfg_)),
      partitioned_(supportsPartition(cfg_, *fn_)),
      wheelEq_(makeWheelQueues(partitioned_)),
      client_(clientEq()), extraPower_(snicEq())
{
    const std::vector<std::string> errors = cfg_.validate();
    if (!errors.empty()) {
        std::string msg = "ServerConfig: ";
        for (std::size_t i = 0; i < errors.size(); ++i) {
            if (i)
                msg += "; ";
            msg += errors[i];
        }
        throw std::invalid_argument(msg);
    }

    const auto &paths = funcs::pathLatencies();

    if (partitioned_) {
        // The SNIC and host wheels run concurrently; give each its
        // own function instance instead of sharing fn_ (which stays
        // the client-side request builder).
        fnSnic_ = makeFn(cfg_);
        fnHost_ = makeFn(cfg_);
    }

    const bool cooperative = cfg_.mode != Mode::HostOnly &&
                             cfg_.mode != Mode::SnicOnly;
    if (fn_->stateful() && cooperative && cfg_.coherent_state)
        domain_ = std::make_unique<coherence::CoherenceDomain>();

    // --- Egress: processors -> (merger) -> return link -> client ----
    returnLink_ = std::make_unique<net::Link>(
        snicEq(), net::Link::Config{100.0, 500 * kNs, 4096, "return"},
        client_);

    net::PacketSink *egress = returnLink_.get();
    if (cfg_.mode == Mode::Hal) {
        // Responses also traverse the HLB FPGA on the way out.
        mergerDelay_ = std::make_unique<nic::FixedDelay>(
            snicEq(), paths.hlb_per_direction, *returnLink_);
        egress = mergerDelay_.get();
    }
    merger_ = std::make_unique<TrafficMerger>(
        TrafficMerger::Config{snicIp_, hostIp_, snicMac_}, *egress);

    // Host responses cross PCIe back to the eSwitch first.
    hostTxDelay_ = std::make_unique<nic::FixedDelay>(
        hostEq(), paths.pcie_extra, *merger_);

    // --- Profiles -----------------------------------------------------
    auto profileFor = [&](funcs::Platform p) {
        if (cfg_.function == funcs::FunctionId::Rem &&
            !cfg_.pipeline_second) {
            return funcs::remProfile(p, cfg_.rem_ruleset);
        }
        if (cfg_.pipeline_second) {
            // Two-stage pipeline: stages run concurrently on
            // different cores/units (the paper's example feeds an
            // SNIC-CPU stage into an SNIC-accelerator stage), so the
            // combined rate is the slower stage's, derated for the
            // inter-stage hand-off; latency adds.
            constexpr double kInterStageEff = 0.9;
            const auto &a = funcs::profile(p, cfg_.function);
            const auto &b = funcs::profile(p, *cfg_.pipeline_second);
            funcs::FunctionProfile combo = a;
            // Pipelines run on the CPU unless a stage needs the
            // accelerator; the accelerator stage dominates latency.
            combo.unit = (a.unit == funcs::ExecUnit::Accel ||
                          b.unit == funcs::ExecUnit::Accel)
                             ? funcs::ExecUnit::Accel
                             : funcs::ExecUnit::Cpu;
            combo.max_tp_gbps =
                kInterStageEff * std::min(a.max_tp_gbps, b.max_tp_gbps);
            combo.cap_gbps = std::max(a.cap_gbps, b.cap_gbps);
            combo.accel_latency = a.accel_latency + b.accel_latency;
            combo.core_active_w =
                std::max(a.core_active_w, b.core_active_w);
            combo.accel_w = a.accel_w + b.accel_w;
            return combo;
        }
        return funcs::profile(p, cfg_.function);
    };

    // --- Processors ----------------------------------------------------
    const bool wants_host = cfg_.mode != Mode::SnicOnly;
    const bool wants_snic = cfg_.mode != Mode::HostOnly;

    if (wants_host) {
        proc::Processor::Config hc;
        hc.platform = cfg_.host_platform;
        hc.profile = profileFor(cfg_.host_platform);
        hc.cores = cfg_.mode == Mode::HostSlb &&
                           cfg_.host_cores > cfg_.slb_cores
                       ? cfg_.host_cores - cfg_.slb_cores
                       : cfg_.host_cores;
        hc.ring_descriptors = cfg_.ring_descriptors;
        // Host cores sleep only under HAL (§V-B); the host baseline
        // busy-polls like any DPDK deployment.
        if (cfg_.mode == Mode::Hal && cfg_.power.host_sleep.enabled)
            hc.sleep = cfg_.power.host_sleep;
        hc.governor = cfg_.power.governor;
        hc.node = coherence::NodeId::Host;
        hc.service_mac = hostMac_;
        // In host-only mode the host IS the service identity.
        hc.service_ip = cfg_.mode == Mode::HostOnly ? snicIp_ : hostIp_;
        host_ = std::make_unique<proc::Processor>(
            hostEq(), hc, partitioned_ ? *fnHost_ : *fn_, domain_.get(),
            *hostTxDelay_);
    }

    if (wants_snic) {
        proc::Processor::Config sc;
        sc.platform = cfg_.snic_platform;
        sc.profile = profileFor(cfg_.snic_platform);
        // HAL dedicates one SNIC core to the LBP; the SNIC-side SLB
        // dedicates slb_cores to balancing (the host-side SLB takes
        // its cores from the host instead).
        unsigned cores = cfg_.snic_cores;
        if (cfg_.mode == Mode::Hal && cores > 1)
            cores -= 1;
        if (cfg_.mode == Mode::Slb)
            cores = cores > cfg_.slb_cores ? cores - cfg_.slb_cores : 1;
        sc.cores = cores;
        sc.ring_descriptors = cfg_.ring_descriptors;
        sc.dvfs = cfg_.power.snic_dvfs;
        sc.governor = cfg_.power.governor;
        sc.node = coherence::NodeId::Snic;
        sc.service_mac = snicMac_;
        sc.service_ip = snicIp_;
        snic_ = std::make_unique<proc::Processor>(
            snicEq(), sc, partitioned_ ? *fnSnic_ : *fn_, domain_.get(),
            *merger_);
    }

    // --- Ingress paths -------------------------------------------------
    // For a stateful function under HAL, the server is the CXL-SNIC
    // emulation (§V-C): the host sits one cache-coherent hop away.
    const Tick host_hop =
        paths.eswitch_to_snic + paths.pcie_extra +
        (fn_->stateful() && cfg_.mode == Mode::Hal ? paths.upi_extra : 0);

    if (wants_snic) {
        snicPathDelay_ = std::make_unique<nic::FixedDelay>(
            snicEq(), paths.eswitch_to_snic, snic_->input());
    }
    if (wants_host) {
        // In partitioned mode this is the SNIC wheel's egress toward
        // the host wheel: it stamps now + host_hop and hands the
        // packet to the cross-wheel edge (buildPartition()).
        hostPathDelay_ = std::make_unique<nic::FixedDelay>(
            snicEq(), host_hop, host_->input());
    }

    switch (cfg_.mode) {
      case Mode::HostOnly:
        ingress_ = hostPathDelay_.get();
        break;
      case Mode::SnicOnly:
        ingress_ = snicPathDelay_.get();
        break;
      case Mode::Hal: {
        eswitch_ = std::make_unique<nic::ESwitch>();
        eswitch_->addRule(snicIp_, snicPathDelay_.get());
        eswitch_->addRule(hostIp_, hostPathDelay_.get());
        monitor_ = std::make_unique<TrafficMonitor>(snicEq(),
                                                    cfg_.monitor);
        TrafficDirector::Config dc;
        dc.snic_ip = snicIp_;
        dc.host_ip = hostIp_;
        dc.host_mac = hostMac_;
        dc.mode = cfg_.split_mode;
        dc.initial_fwd_th_gbps = cfg_.lbp.initial_fwd_gbps;
        director_ = std::make_unique<TrafficDirector>(
            snicEq(), dc, *monitor_, *eswitch_);
        hlbDelay_ = std::make_unique<nic::FixedDelay>(
            snicEq(), funcs::pathLatencies().hlb_per_direction,
            *director_);
        lbp_ = std::make_unique<LoadBalancingPolicy>(snicEq(), cfg_.lbp,
                                                     *snic_, *director_);
        if (snic_->hasGovernor()) {
            // LBP/governor co-design contract: the director decides
            // *where* (threshold) from the capacity the governor's
            // *how many* currently provides, so a consolidated SNIC
            // is never asked to absorb its full static rating.
            lbp_->setCapacityProvider([this] {
                return snic_->config().profile.scaledTp(
                    snic_->governorActiveCores());
            });
        }
        if (cfg_.watchdog.enabled) {
            HealthWatchdog::Config wc = cfg_.watchdog;
            if (wc.lbp_failsafe_gbps <= 0.0)
                wc.lbp_failsafe_gbps = cfg_.lbp.initial_fwd_gbps;
            watchdog_ = std::make_unique<HealthWatchdog>(
                eq_, wc, snic_.get(), host_.get(), director_.get(),
                lbp_.get(), [this] {
                    std::uint64_t d = 0;
                    if (snic_ != nullptr)
                        d += snic_->drops();
                    if (host_ != nullptr)
                        d += host_->drops();
                    if (clientLink_ != nullptr)
                        d += clientLink_->drops() +
                             clientLink_->faultDrops();
                    if (returnLink_ != nullptr)
                        d += returnLink_->drops() +
                             returnLink_->faultDrops();
                    return d;
                });
        }
        // The LBP occupies one SNIC core; the HLB burns its FPGA
        // power (§VII-C).
        extraPower_.add(
            funcs::profile(cfg_.snic_platform, cfg_.function)
                .core_active_w +
            kHlbPowerW);
        ingress_ = hlbDelay_.get();
        break;
      }
      case Mode::Slb: {
        SoftwareLoadBalancer::Config lc;
        lc.slb_cores = cfg_.slb_cores;
        lc.fwd_th_gbps = cfg_.slb_fwd_th_gbps;
        lc.fwd_ip = hostIp_;
        lc.fwd_mac = hostMac_;
        lc.core_active_w =
            funcs::profile(cfg_.snic_platform, cfg_.function)
                .core_active_w;
        // Forwarded packets cross from SNIC memory over PCIe.
        slb_ = std::make_unique<SoftwareLoadBalancer>(
            eq_, lc, snic_->input(), *hostPathDelay_, extraPower_);
        // Everything lands on the SLB cores first (via the eSwitch
        // path into SNIC memory).
        snicPathDelay_ = std::make_unique<nic::FixedDelay>(
            eq_, paths.eswitch_to_snic, slb_->input());
        ingress_ = snicPathDelay_.get();
        break;
      }
      case Mode::HostSlb: {
        // §IV alternative: every packet first crosses to the host,
        // whose SLB cores keep the excess and tx_burst the
        // below-threshold share back through the eSwitch to the SNIC
        // (eSwitch -> host -> eSwitch -> SNIC: 2x DPDK processing).
        SoftwareLoadBalancer::Config lc;
        lc.slb_cores = cfg_.slb_cores;
        lc.fwd_th_gbps = cfg_.slb_fwd_th_gbps;
        lc.fwd_ip = snicIp_;
        lc.fwd_mac = snicMac_;
        lc.forward_kept = true;
        // A full DPDK rx_burst + tx_burst pass on the host per
        // packet (the paper's "2x DPDK packet processing"), plus the
        // copy bandwidth; host cores are several times faster than
        // the wimpy Arm cores at both.
        lc.classify_cost = 600 * kNs;
        lc.fwd_gbps_per_core = 60.0;
        lc.core_active_w =
            funcs::profile(cfg_.host_platform, cfg_.function)
                .core_active_w;
        // PCIe back to the eSwitch, the eSwitch hop, and the SNIC's
        // own receive processing of the forwarded stream.
        lc.fwd_path_latency =
            paths.pcie_extra + 2 * paths.eswitch_to_snic;
        slb_ = std::make_unique<SoftwareLoadBalancer>(
            eq_, lc, host_->input(), snic_->input(), extraPower_);
        hostPathDelay_ = std::make_unique<nic::FixedDelay>(
            eq_, paths.eswitch_to_snic + paths.pcie_extra,
            slb_->input());
        ingress_ = hostPathDelay_.get();
        break;
      }
    }

    // --- Client link ----------------------------------------------------
    clientLink_ = std::make_unique<net::Link>(
        clientEq(), net::Link::Config{100.0, 500 * kNs, 4096, "client"},
        *ingress_);

    if (partitioned_)
        buildPartition();

    // --- Energy ledger (§V-B / Fig. 3) -------------------------------
    // Dynamic accounts bind the processors' monotone per-component
    // watt integrators; "extra" is the HLB/LBP/SLB meter (reset at the
    // warmup boundary, snapshot taken after that reset); "static" is
    // the idle-server baseline integrated analytically.
    // Governor-armed processors get per-core CPU sub-accounts
    // ("snic_cpu.core0", ...) *instead of* the aggregate, so park
    // decisions show up core by core in the ledger and totalJ() never
    // double-counts; RunResult reads the component through
    // joulesPrefix(), which sums either layout.
    auto addCpuAccounts = [this](proc::Processor *p,
                                 const std::string &name) {
        if (p->hasGovernor()) {
            for (unsigned i = 0; i < p->coreCount(); ++i) {
                energy_.addDynamic(
                    name + ".core" + std::to_string(i),
                    [p, i] { return p->coreJoulesNow(i); },
                    [p, i] { return p->coreCurrentW(i); });
            }
        } else {
            energy_.addDynamic(
                name, [p] { return p->cpuJoulesNow(); },
                [p] { return p->cpuCurrentW(); });
        }
    };
    if (snic_ != nullptr) {
        addCpuAccounts(snic_.get(), "snic_cpu");
        energy_.addDynamic(
            "snic_accel", [this] { return snic_->accelJoulesNow(); },
            [this] { return snic_->accelCurrentW(); });
    }
    if (host_ != nullptr) {
        addCpuAccounts(host_.get(), "host_cpu");
        energy_.addDynamic(
            "host_accel", [this] { return host_->accelJoulesNow(); },
            [this] { return host_->accelCurrentW(); });
    }
    energy_.addDynamic(
        "extra", [this] { return extraPower_.joules(); },
        [this] { return extraPower_.currentW(); });
    energy_.addStatic("static", funcs::kServerBasePowerW);

    // --- SLO monitor (Table 2) ---------------------------------------
    // Always constructed when configured, independent of cfg_.obs, so
    // the SLO RunResult fields do not depend on whether stats/tracing
    // are enabled.
    if (cfg_.slo.enabled()) {
        slo_ = std::make_unique<obs::SloMonitor>(cfg_.slo);
        client_.setSlo(slo_.get());
    }

    buildObs();
}

void
ServerSystem::buildObs()
{
    if (!cfg_.obs.enabled())
        return;
    obs_ = std::make_unique<obs::Observability>(eq_, cfg_.obs);

    obs::PacketTracer *tr = obs_->tracer();
    if (tr != nullptr) {
        using obs::Lane;
        tr->setLaneName(obs::laneId(Lane::ClientLink), "client_link");
        tr->setLaneName(obs::laneId(Lane::Eswitch), "eswitch");
        tr->setLaneName(obs::laneId(Lane::SnicRing), "snic_ring");
        tr->setLaneName(obs::laneId(Lane::SnicCore), "snic_core");
        tr->setLaneName(obs::laneId(Lane::HostRing), "host_ring");
        tr->setLaneName(obs::laneId(Lane::HostCore), "host_core");
        tr->setLaneName(obs::laneId(Lane::Merger), "merger");
        tr->setLaneName(obs::laneId(Lane::ReturnLink), "return_link");
        tr->setLaneName(obs::laneId(Lane::Slb), "slb");

        clientLink_->setTrace(tr, obs::laneId(Lane::ClientLink),
                              obs::TracePoint::Ingress);
        returnLink_->setTrace(tr, obs::laneId(Lane::ReturnLink),
                              obs::TracePoint::Egress);
        if (eswitch_ != nullptr)
            eswitch_->setTrace(tr, obs::laneId(Lane::Eswitch), &eq_);
        if (merger_ != nullptr)
            merger_->setTrace(tr, obs::laneId(Lane::Merger), &eq_);
    }

    obs::SpanTracer *sp = obs_->spans();
    obs::FlightRecorder *fr = obs_->flightRecorder();
    if (sp != nullptr || fr != nullptr) {
        const std::uint8_t govLane =
            obs::spanLaneId(obs::SpanLane::Governor);
        const std::uint8_t srvLane =
            obs::spanLaneId(obs::SpanLane::Server);
        if (sp != nullptr) {
            sp->setLaneName(govLane, "governor");
            sp->setLaneName(srvLane, "server");
        }
        if (fr != nullptr) {
            fr->setLaneName(govLane, "governor");
            fr->setLaneName(srvLane, "server");
        }
        if (snic_ != nullptr && snic_->coreGovernor() != nullptr)
            snic_->coreGovernor()->attachSpans(sp, fr, govLane);
        if (host_ != nullptr && host_->coreGovernor() != nullptr)
            host_->coreGovernor()->attachSpans(sp, fr, govLane);
    }
    if (fr != nullptr && slo_ != nullptr) {
        slo_->setOnViolation([this, fr](Tick, double p99_us) {
            obs::frTrigger(fr, eq_.now(), obs::FrTrigger::Slo,
                           static_cast<std::uint32_t>(p99_us));
        });
    }

    obs::StatsRegistry *reg = cfg_.obs.stats ? &obs_->registry() : nullptr;

    if (snic_ != nullptr) {
        snic_->attachObs(reg, tr, "server.snic",
                         obs::laneId(obs::Lane::SnicRing),
                         obs::laneId(obs::Lane::SnicCore),
                         cfg_.obs.series);
    }
    if (host_ != nullptr) {
        host_->attachObs(reg, tr, "server.host",
                         obs::laneId(obs::Lane::HostRing),
                         obs::laneId(obs::Lane::HostCore),
                         cfg_.obs.series);
    }

    if (reg == nullptr)
        return;

    // --- the rest of the component tree (pull-based: fnCounters read
    // live component counters at serialization; probes sample each
    // epoch) ----------------------------------------------------------
    reg->fnCounter("server.client_link.delivered_frames",
                   [this] { return clientLink_->deliveredFrames(); });
    reg->fnCounter("server.client_link.delivered_bytes",
                   [this] { return clientLink_->deliveredBytes(); });
    reg->fnCounter("server.client_link.drops",
                   [this] { return clientLink_->drops(); });
    reg->fnCounter("server.client_link.fault_drops",
                   [this] { return clientLink_->faultDrops(); });
    reg->fnCounter("server.return_link.delivered_frames",
                   [this] { return returnLink_->deliveredFrames(); });
    reg->fnCounter("server.return_link.delivered_bytes",
                   [this] { return returnLink_->deliveredBytes(); });
    reg->fnCounter("server.return_link.drops",
                   [this] { return returnLink_->drops(); });
    reg->fnCounter("server.return_link.fault_drops",
                   [this] { return returnLink_->faultDrops(); });
    reg->fnCounter("server.eq.past_clamps",
                   [this] { return pastClamps(); });

    // Core-scaling governor aggregates over both processors. These
    // register unconditionally (zero when the governor is off) so
    // every server-rooted stats artifact carries the paths the bench
    // schema requires.
    reg->fnCounter("server.governor.epochs", [this] {
        return (snic_ != nullptr ? snic_->governorEpochs() : 0) +
               (host_ != nullptr ? host_->governorEpochs() : 0);
    });
    reg->fnCounter("server.governor.rebalances", [this] {
        return (snic_ != nullptr ? snic_->governorRebalances() : 0) +
               (host_ != nullptr ? host_->governorRebalances() : 0);
    });
    reg->fnCounter("server.governor.migrations", [this] {
        return (snic_ != nullptr ? snic_->governorMigrations() : 0) +
               (host_ != nullptr ? host_->governorMigrations() : 0);
    });
    reg->fnCounter("server.governor.parks", [this] {
        return (snic_ != nullptr ? snic_->governorParks() : 0) +
               (host_ != nullptr ? host_->governorParks() : 0);
    });
    reg->fnCounter("server.governor.unparks", [this] {
        return (snic_ != nullptr ? snic_->governorUnparks() : 0) +
               (host_ != nullptr ? host_->governorUnparks() : 0);
    });
    reg->fnGauge("server.governor.active_cores", [this] {
        unsigned n = 0;
        if (snic_ != nullptr)
            n += snic_->governorActiveCores();
        if (host_ != nullptr)
            n += host_->governorActiveCores();
        return static_cast<double>(n);
    });

    // Flight-recorder health — unconditional and null-safe like the
    // governor block above, so the paths the bench schema requires
    // exist in every server-rooted stats artifact (zero when off).
    const auto frCount =
        [this](std::uint64_t (obs::FlightRecorder::*read)() const) {
            const obs::FlightRecorder *f = obs_->flightRecorder();
            return f != nullptr ? (f->*read)() : 0;
        };
    reg->fnCounter("server.flightrec.recorded", [frCount] {
        return frCount(&obs::FlightRecorder::recorded);
    });
    reg->fnCounter("server.flightrec.dumps", [frCount] {
        return frCount(&obs::FlightRecorder::dumps);
    });
    reg->fnCounter("server.flightrec.dumps_dropped", [frCount] {
        return frCount(&obs::FlightRecorder::dumpsDropped);
    });
    const auto frTriggers = [this](obs::FrTrigger t) {
        const obs::FlightRecorder *f = obs_->flightRecorder();
        return f != nullptr ? f->triggers(t) : 0;
    };
    reg->fnCounter("server.flightrec.triggers_fault", [frTriggers] {
        return frTriggers(obs::FrTrigger::Fault);
    });
    reg->fnCounter("server.flightrec.triggers_slo", [frTriggers] {
        return frTriggers(obs::FrTrigger::Slo);
    });
    reg->fnCounter("server.flightrec.triggers_shed", [frTriggers] {
        return frTriggers(obs::FrTrigger::Shed);
    });
    reg->fnCounter("server.flightrec.triggers_gov", [frTriggers] {
        return frTriggers(obs::FrTrigger::Gov);
    });

    if (eswitch_ != nullptr) {
        reg->fnCounter("server.eswitch.matched",
                       [this] { return eswitch_->matched(); });
        reg->fnCounter("server.eswitch.unrouted",
                       [this] { return eswitch_->unrouted(); });
        reg->fnCounter("server.eswitch.blackholed",
                       [this] { return eswitch_->blackholed(); });
    }

    if (monitor_ != nullptr) {
        reg->probe("server.hlb.monitor.rate_rx_gbps",
                   [this] { return monitor_->rateRxGbps(); },
                   obs::StatsRegistry::ProbeOptions{cfg_.obs.series, 0.1,
                                                    400.0, 16});
    }
    if (director_ != nullptr) {
        reg->probe("server.hlb.director.fwd_th_gbps",
                   [this] { return director_->fwdThGbps(); },
                   obs::StatsRegistry::ProbeOptions{cfg_.obs.series, 0.1,
                                                    400.0, 16});
        reg->fnCounter("server.hlb.director.to_snic",
                       [this] { return director_->toSnic(); });
        reg->fnCounter("server.hlb.director.to_host",
                       [this] { return director_->toHost(); });
    }
    if (merger_ != nullptr) {
        reg->fnCounter("server.hlb.merger.merged",
                       [this] { return merger_->merged(); });
        reg->fnCounter("server.hlb.merger.total",
                       [this] { return merger_->total(); });
    }
    if (lbp_ != nullptr) {
        reg->fnCounter("server.lbp.epochs",
                       [this] { return lbp_->epochs(); });
        reg->fnCounter("server.lbp.adjustments_up",
                       [this] { return lbp_->adjustmentsUp(); });
        reg->fnCounter("server.lbp.adjustments_down",
                       [this] { return lbp_->adjustmentsDown(); });
        reg->fnCounter("server.lbp.heartbeats",
                       [this] { return lbp_->heartbeats(); });
        reg->probe("server.lbp.snic_tp_gbps",
                   [this] { return lbp_->snicTpGbps(); },
                   obs::StatsRegistry::ProbeOptions{cfg_.obs.series, 0.1,
                                                    400.0, 16});
    }
    if (watchdog_ != nullptr) {
        reg->fnCounter("server.watchdog.failovers", [this] {
            return watchdog_->stats().failovers;
        });
        reg->fnCounter("server.watchdog.recoveries", [this] {
            return watchdog_->stats().recoveries;
        });
        reg->probe("server.watchdog.state", [this] {
            return static_cast<double>(watchdog_->state());
        });
    }
    if (slb_ != nullptr) {
        reg->fnCounter("server.slb.kept_local",
                       [this] { return slb_->keptLocal(); });
        reg->fnCounter("server.slb.forwarded",
                       [this] { return slb_->forwarded(); });
        reg->fnCounter("server.slb.drops",
                       [this] { return slb_->drops(); });
    }

    // Per-component energy accounts: lazy joules gauges plus
    // epoch-sampled power probes.
    energy_.attachObs(reg, "server.energy", cfg_.obs.series);

    if (slo_ != nullptr) {
        reg->fnCounter("server.slo.epochs",
                       [this] { return slo_->epochs(); });
        reg->fnCounter("server.slo.violation_epochs",
                       [this] { return slo_->violationEpochs(); });
        reg->fnGauge("server.slo.target_p99_us",
                     [this] { return slo_->targetP99Us(); });
        reg->fnGauge("server.slo.worst_epoch_p99_us",
                     [this] { return slo_->worstEpochP99Us(); });

        obs::PacketTracer *tracer = obs_->tracer();
        if (tracer != nullptr) {
            // Tail attribution recomputes from the tracer ring at
            // serialization time; deterministic for a given ring, and
            // stats-tree-only (RunResult must not depend on tracing).
            const Tick target = static_cast<Tick>(
                cfg_.slo.target_p99_us * static_cast<double>(kUs));
            auto tail = [tracer, target] {
                return obs::attributeTail(*tracer, target);
            };
            reg->fnCounter("server.slo.tail_dispatch",
                           [tail] { return tail().dispatch; });
            reg->fnCounter("server.slo.tail_queue_wait",
                           [tail] { return tail().queue_wait; });
            reg->fnCounter("server.slo.tail_service",
                           [tail] { return tail().service; });
            reg->fnCounter("server.slo.tail_egress",
                           [tail] { return tail().egress; });
            reg->fnCounter("server.slo.tail_attributed",
                           [tail] { return tail().attributed; });
        }
    }
}

void
ServerSystem::buildPartition()
{
    // The four cross-wheel hops. Each edge's sender reserves keys on
    // its own (banded) queue, so merged same-tick work keeps the
    // fixed (tick, band, seq) order across thread counts.
    edgeClientToSnic_ = std::make_unique<net::WheelEdge>(
        clientEq(), snicEq(), *ingress_, "edge:client->snic");
    clientLink_->setEgressEdge(edgeClientToSnic_.get());

    edgeSnicToClient_ = std::make_unique<net::WheelEdge>(
        snicEq(), clientEq(), client_, "edge:snic->client");
    returnLink_->setEgressEdge(edgeSnicToClient_.get());

    edgeSnicToHost_ = std::make_unique<net::WheelEdge>(
        snicEq(), hostEq(), host_->input(), "edge:snic->host");
    hostPathDelay_->setEgressEdge(edgeSnicToHost_.get());

    edgeHostToSnic_ = std::make_unique<net::WheelEdge>(
        hostEq(), snicEq(), *merger_, "edge:host->snic");
    hostTxDelay_->setEgressEdge(edgeHostToSnic_.get());

    // Lookahead: the smallest latency any packet pays to cross
    // between wheels. Link deliveries add serialization on top of
    // propagation, so propagation alone is a safe lower bound there.
    const Tick lookahead = std::min(
        std::min(clientLink_->config().propagation,
                 returnLink_->config().propagation),
        std::min(hostPathDelay_->delay(), hostTxDelay_->delay()));

    std::vector<WheelRunner::Wheel> wheels(3);
    wheels[0].eq = &clientEq();
    wheels[0].ingest = [this](Tick before) {
        edgeSnicToClient_->ingest(before);
    };
    wheels[0].pendingTick = [this] {
        return edgeSnicToClient_->pendingTick();
    };
    wheels[1].eq = &snicEq();
    wheels[1].ingest = [this](Tick before) {
        edgeClientToSnic_->ingest(before);
        edgeHostToSnic_->ingest(before);
    };
    wheels[1].pendingTick = [this] {
        return std::min(edgeClientToSnic_->pendingTick(),
                        edgeHostToSnic_->pendingTick());
    };
    wheels[2].eq = &hostEq();
    wheels[2].ingest = [this](Tick before) {
        edgeSnicToHost_->ingest(before);
    };
    wheels[2].pendingTick = [this] {
        return edgeSnicToHost_->pendingTick();
    };

    runner_ = std::make_unique<WheelRunner>(std::move(wheels),
                                            lookahead,
                                            cfg_.run_threads);
}

ServerSystem::~ServerSystem() = default;

double
ServerSystem::totalDynamicW() const
{
    double w = extraPower_.averageW();
    if (snic_ != nullptr)
        w += snic_->averageDynamicW();
    if (host_ != nullptr)
        w += host_->averageDynamicW();
    return w;
}

std::uint64_t
ServerSystem::totalDrops() const
{
    return (snic_ != nullptr ? snic_->drops() : 0) +
           (host_ != nullptr ? host_->drops() : 0) +
           (slb_ != nullptr ? slb_->drops() : 0) +
           clientLink_->drops() + clientLink_->faultDrops() +
           returnLink_->faultDrops();
}

RunResult
ServerSystem::run(std::unique_ptr<net::RateProcess> rate, Tick warmup,
                  Tick measure, Tick resample_epoch)
{
    net::TrafficGenerator::Config gc;
    gc.endpoints.src_mac = clientMac_;
    gc.endpoints.dst_mac = snicMac_;
    gc.endpoints.src_ip = clientIp_;
    gc.endpoints.dst_ip = snicIp_;
    gc.endpoints.src_port = 40000;
    gc.endpoints.dst_port = 9000;
    gc.frame_bytes = cfg_.frame_bytes;
    gc.resample_epoch = resample_epoch;
    gc.seed = cfg_.seed;

    net::TrafficGenerator gen(clientEq(), gc, std::move(rate),
                              *clientLink_);
    gen.setPayloadFn(
        [this](net::Packet &pkt) { fn_->makeRequest(pkt, rng_); });

    // Engine selector: the monolithic loop or the wheel runner; both
    // advance every component to exactly `until`.
    auto advance = [this](Tick until) {
        if (runner_ != nullptr)
            runner_->runUntil(until);
        else
            eq_.runUntil(until);
    };

    if (monitor_ != nullptr)
        monitor_->start();
    if (lbp_ != nullptr)
        lbp_->start();
    if (watchdog_ != nullptr) {
        watchdog_->resetStats();
        watchdog_->start();
    }
    if (!cfg_.faults.empty()) {
        fault::FaultHooks fh;
        fh.snic = snic_.get();
        fh.host = host_.get();
        fh.client_link = clientLink_.get();
        fh.return_link = returnLink_.get();
        if (eswitch_ != nullptr) {
            fh.switch_port = [this](fault::FaultTarget t, bool up) {
                eswitch_->setPortEnabled(
                    t == fault::FaultTarget::Host ? hostIp_ : snicIp_,
                    up);
            };
        }
        if (lbp_ != nullptr) {
            fh.control_impair = [this](double loss, Tick extra,
                                       Rng *rng) {
                lbp_->setControlImpairment(loss, extra, rng);
            };
            fh.control_restore = [this] {
                lbp_->clearControlImpairment();
            };
            fh.lbp_stalled = [this](bool s) { lbp_->setStalled(s); };
        }
        fh.on_inject = [this](const fault::FaultEvent &ev) {
            obs::frTrigger(obs_ != nullptr ? obs_->flightRecorder()
                                           : nullptr,
                           eq_.now(), obs::FrTrigger::Fault,
                           ev.index);
        };
        injector_ = std::make_unique<fault::FaultInjector>(
            eq_, cfg_.faults, std::move(fh));
        injector_->start(eq_.now());
    }

    const Tick start = clientEq().now();
    const Tick measure_start = start + warmup;
    const Tick end = measure_start + measure;
    gen.start(end);

    advance(measure_start);

    // Reset all statistics at the warmup boundary.
    client_.resetStats();
    extraPower_.reset();
    if (snic_ != nullptr)
        snic_->resetStats();
    if (host_ != nullptr)
        host_->resetStats();
    if (director_ != nullptr)
        director_->resetStats();
    if (slb_ != nullptr)
        slb_->resetStats();
    const std::uint64_t sent_base = gen.sentFrames();
    const std::uint64_t sent_bytes_base = gen.sentBytes();
    const std::uint64_t snic_base =
        snic_ != nullptr ? snic_->processedFrames() : 0;
    const std::uint64_t host_base =
        host_ != nullptr ? host_->processedFrames() : 0;
    const std::uint64_t drops_base = totalDrops();

    // Energy/SLO windows open at the same boundary the meters were
    // just reset at (the ledger snapshots extraPower_'s freshly
    // zeroed integral, and the per-core watt mirrors by differencing).
    energy_.beginWindow(measure_start);
    if (slo_ != nullptr)
        slo_->beginWindow(measure_start, end);

    // Observability covers the measurement window only: discard
    // warmup samples/records and start the probe sampler. All of it
    // is read-only, so results are identical with obs off.
    if (obs_ != nullptr) {
        obs_->registry().resetAll();
        if (obs_->tracer() != nullptr)
            obs_->tracer()->clear();
        if (obs_->spans() != nullptr)
            obs_->spans()->clear();
        if (obs_->flightRecorder() != nullptr)
            obs_->flightRecorder()->clear();
        obs_->startSampling(end);
    }

    // Windowed throughput sampler for the "Max" columns of Table V.
    // The window tracks the rate-modulation epoch so bursts are not
    // averaged away.
    double max_window = 0.0;
    const Tick window = std::max<Tick>(resample_epoch, 1 * kMs);
    auto delivered_bytes = [this]() {
        std::uint64_t b = 0;
        if (snic_ != nullptr)
            b += snic_->processedBytes();
        if (host_ != nullptr)
            b += host_->processedBytes();
        return b;
    };
    std::uint64_t last_bytes_snapshot = delivered_bytes();
    CallbackEvent sampler;
    Tick sample_at = measure_start + window;
    if (runner_ != nullptr) {
        // Partitioned runs sample via the runner's between-window
        // callback: every wheel is quiesced when it fires, so the
        // cross-wheel processedBytes reads are safe. Same fire ticks
        // and re-arm rule as the event-based sampler below.
        runner_->setGlobalCallback(sample_at, [&]() -> Tick {
            const std::uint64_t b = delivered_bytes();
            max_window = std::max(max_window,
                                  gbps(b - last_bytes_snapshot, window));
            last_bytes_snapshot = b;
            if (sample_at + window <= end) {
                sample_at += window;
                return sample_at;
            }
            return kTickNever;
        });
    } else {
        sampler.setCallback([&] {
            const std::uint64_t b = delivered_bytes();
            max_window = std::max(max_window,
                                  gbps(b - last_bytes_snapshot, window));
            last_bytes_snapshot = b;
            if (eq_.now() + window <= end)
                eq_.scheduleIn(&sampler, window);
        });
        eq_.scheduleIn(&sampler, window);
    }

    advance(end);
    if (sampler.scheduled())
        eq_.deschedule(&sampler);
    if (runner_ != nullptr)
        runner_->setGlobalCallback(kTickNever, {});
    if (obs_ != nullptr)
        obs_->stopSampling();
    gen.stop();

    // Read rate/power metrics at the end of the measurement window,
    // then let in-flight packets drain so their latency still counts.
    RunResult r;
    r.dynamic_power_w = totalDynamicW();
    r.system_power_w = funcs::kServerBasePowerW + r.dynamic_power_w;

    // Close the energy/SLO windows at the same boundary the power
    // averages were read — before the drain, so drained packets'
    // draw and latencies stay out of the window (record() also
    // clamps at windowEnd_, making the drain doubly excluded).
    energy_.endWindow(end);
    if (slo_ != nullptr)
        slo_->finishWindow();
    r.offered_gbps =
        gbps(gen.sentBytes() - sent_bytes_base, end - measure_start);
    r.delivered_gbps = client_.deliveredGbps();

    // In-flight boundary accounting: everything sent this window that
    // is neither answered nor dropped yet is still inside the server.
    {
        const std::uint64_t sent_w = gen.sentFrames() - sent_base;
        const std::uint64_t resolved =
            client_.responses() + (totalDrops() - drops_base);
        r.in_flight_at_window_end =
            sent_w > resolved ? sent_w - resolved : 0;
    }

    advance(end + 10 * kMs);

    r.sent = gen.sentFrames() - sent_base;
    r.responses = client_.responses();
    r.max_window_gbps = std::max(max_window, r.delivered_gbps);
    r.p99_us = client_.p99Us();
    r.mean_us = client_.meanUs();
    r.energy_eff = r.system_power_w > 0.0
                       ? r.delivered_gbps / r.system_power_w
                       : 0.0;
    r.snic_frames = (snic_ != nullptr ? snic_->processedFrames() : 0) -
                    snic_base;
    r.host_frames = (host_ != nullptr ? host_->processedFrames() : 0) -
                    host_base;
    r.drops = totalDrops();
    r.slb_kept = slb_ != nullptr ? slb_->keptLocal() : 0;
    r.slb_forwarded = slb_ != nullptr ? slb_->forwarded() : 0;
    r.final_fwd_th_gbps = lbp_ != nullptr ? lbp_->fwdTh() : 0.0;

    if (watchdog_ != nullptr) {
        watchdog_->stop();
        const auto &ws = watchdog_->stats();
        r.failovers = ws.failovers;
        r.recoveries = ws.recoveries;
        r.degraded_us =
            static_cast<double>(ws.degraded) / static_cast<double>(kUs);
        r.time_to_recover_us =
            static_cast<double>(ws.last_recovery_latency) /
            static_cast<double>(kUs);
        r.failover_drops = ws.degraded_drops;
    }
    if (injector_ != nullptr) {
        r.faults_injected = injector_->injected();
        r.faults_reverted = injector_->reverted();
        // Cancel remaining timers and heal any still-active fault so
        // back-to-back runs on one system start from health (and no
        // Link keeps a pointer into the injector's RNG).
        injector_->stop();
        injector_.reset();
    }
    if (lbp_ != nullptr)
        r.ctrl_updates_dropped = lbp_->updatesDropped();
    r.past_clamps = pastClamps();

    // --- distributed tracing / flight recorder (zero when off) -------
    if (obs_ != nullptr) {
        if (obs::SpanTracer *sp = obs_->spans(); sp != nullptr) {
            // Re-emit the packet-stage records as Server-lane span
            // instants so one Chrome document shows a sampled
            // request's governor decisions next to its pipeline
            // stages.
            if (obs_->tracer() != nullptr) {
                sp->bridgeStages(
                    *obs_->tracer(),
                    obs::spanLaneId(obs::SpanLane::Server));
            }
            r.trace_spans = sp->recorded();
        }
        if (obs::FlightRecorder *f = obs_->flightRecorder();
            f != nullptr) {
            // The drain already ran any scheduled flush; this only
            // closes dumps whose post window outlived the run.
            f->finalizePending(eq_.now());
            r.fr_dumps = f->dumps();
            r.fr_trigger_fault = f->triggers(obs::FrTrigger::Fault);
            r.fr_trigger_slo = f->triggers(obs::FrTrigger::Slo);
            r.fr_trigger_shed = f->triggers(obs::FrTrigger::Shed);
            r.fr_trigger_gov = f->triggers(obs::FrTrigger::Gov);
        }
    }

    // --- core-scaling governor (zero when unarmed) -------------------
    r.gov_epochs = (snic_ != nullptr ? snic_->governorEpochs() : 0) +
                   (host_ != nullptr ? host_->governorEpochs() : 0);
    r.gov_rebalances =
        (snic_ != nullptr ? snic_->governorRebalances() : 0) +
        (host_ != nullptr ? host_->governorRebalances() : 0);
    r.gov_migrations =
        (snic_ != nullptr ? snic_->governorMigrations() : 0) +
        (host_ != nullptr ? host_->governorMigrations() : 0);
    r.gov_parks = (snic_ != nullptr ? snic_->governorParks() : 0) +
                  (host_ != nullptr ? host_->governorParks() : 0);
    r.gov_unparks = (snic_ != nullptr ? snic_->governorUnparks() : 0) +
                    (host_ != nullptr ? host_->governorUnparks() : 0);
    r.gov_min_active_cores =
        (snic_ != nullptr ? snic_->governorMinActive() : 0) +
        (host_ != nullptr ? host_->governorMinActive() : 0);
    r.gov_max_active_cores =
        (snic_ != nullptr ? snic_->governorMaxActive() : 0) +
        (host_ != nullptr ? host_->governorMaxActive() : 0);

    // --- energy breakdown (window fixed above, pre-drain) ------------
    // joulesPrefix sums one aggregate account or the governor-armed
    // per-core sub-accounts, whichever layout this run registered.
    r.energy_snic_cpu_j = energy_.joulesPrefix("snic_cpu");
    r.energy_snic_accel_j = energy_.joules("snic_accel");
    r.energy_host_cpu_j = energy_.joulesPrefix("host_cpu");
    r.energy_host_accel_j = energy_.joules("host_accel");
    r.energy_extra_j = energy_.joules("extra");
    r.energy_static_j = energy_.joules("static");
    r.energy_total_j = energy_.totalJ();
    r.j_per_request = r.responses > 0
                          ? r.energy_total_j /
                                static_cast<double>(r.responses)
                          : 0.0;
    const double window_gb =
        r.delivered_gbps * energy_.windowSeconds();
    r.j_per_gb = window_gb > 0.0 ? r.energy_total_j / window_gb : 0.0;

    if (slo_ != nullptr) {
        r.slo_target_p99_us = slo_->targetP99Us();
        r.slo_worst_p99_us = slo_->worstEpochP99Us();
        r.slo_epochs = slo_->epochs();
        r.slo_violation_epochs = slo_->violationEpochs();
    }

    if (monitor_ != nullptr)
        monitor_->stop();
    if (lbp_ != nullptr)
        lbp_->stop();

    return r;
}

} // namespace halsim::core
