#include "core/config.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace halsim::core {

std::optional<unsigned>
parseThreadsValue(std::string_view text, std::string *error)
{
    auto fail = [&](const std::string &why) -> std::optional<unsigned> {
        if (error != nullptr)
            *error = why;
        return std::nullopt;
    };
    if (text.empty())
        return fail("thread count is empty; give a positive integer "
                    "or 'all'");
    if (text == "all")
        return 0; // SweepOptions sentinel: all hardware threads
    if (text[0] == '-')
        return fail("thread count cannot be negative: '" +
                    std::string(text) + "'");
    unsigned long value = 0;
    for (char c : text) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0)
            return fail("thread count is not a number: '" +
                        std::string(text) + "'");
        value = value * 10 + static_cast<unsigned long>(c - '0');
        if (value > kMaxThreads)
            return fail("thread count out of range (1.." +
                        std::to_string(kMaxThreads) + "): '" +
                        std::string(text) + "'");
    }
    if (value == 0)
        return fail("thread count must be positive; use 'all' for "
                    "every hardware thread");
    return static_cast<unsigned>(value);
}

unsigned
envDefaultThreads(unsigned fallback)
{
    const char *env = std::getenv("HALSIM_THREADS");
    if (env == nullptr)
        return fallback;
    std::string error;
    if (const auto parsed = parseThreadsValue(env, &error))
        return *parsed;
    std::fprintf(stderr,
                 "warning: ignoring HALSIM_THREADS: %s\n",
                 error.c_str());
    return fallback;
}

} // namespace halsim::core
