/**
 * @file
 * Process-environment configuration accessors.
 *
 * The simulator itself must never read ambient process state (wall
 * clock, environment, cwd) — that is what keeps runs bit-reproducible
 * (DESIGN.md §9). The *harness* may take defaults from the
 * environment, but only through the documented accessors here, so
 * every such escape hatch is grep-able in one place.
 */

#ifndef HALSIM_CORE_CONFIG_HH
#define HALSIM_CORE_CONFIG_HH

#include <optional>
#include <string>
#include <string_view>

namespace halsim::core {

/**
 * Parse a sweep worker-thread count as accepted by `--threads` and
 * HALSIM_THREADS. Grammar: a positive decimal integer (at most
 * @ref kMaxThreads), or the word `all` for every hardware thread.
 *
 * @return the count (0 is the internal "all hardware threads"
 *         sentinel used by SweepOptions), or std::nullopt with
 *         @p error filled in. Rejected: empty, non-numeric, trailing
 *         junk, negative, explicit 0 (spell it `all`), and
 *         implausibly large values.
 */
std::optional<unsigned> parseThreadsValue(std::string_view text,
                                          std::string *error);

/** Upper bound accepted by parseThreadsValue (sanity, not a target). */
inline constexpr unsigned kMaxThreads = 4096;

/**
 * Default sweep worker count: the HALSIM_THREADS environment variable
 * when set and well-formed (same grammar as `--threads`), else
 * @p fallback. A malformed value warns on stderr and falls back — an
 * environment variable should not kill a bench that never asked for
 * threading. This is the single sanctioned reader of HALSIM_THREADS.
 */
unsigned envDefaultThreads(unsigned fallback = 1);

} // namespace halsim::core

#endif // HALSIM_CORE_CONFIG_HH
