/**
 * @file
 * RunResult serialization: the single emission point for every bench
 * artifact. Benches used to hand-roll fprintf JSON per binary; they
 * now all call toJson()/toCsvRow(), so adding a RunResult field means
 * editing exactly this file (and the committed schema check in
 * tools/bench_schema.json).
 */

#include "core/server.hh"
#include "obs/registry.hh"

namespace halsim::core {

namespace {

// Field table driving all three emitters, so JSON and CSV can never
// disagree on order or spelling.
struct Field
{
    const char *name;
    enum class Type
    {
        F64,
        U64,
    } type;
    double (*f)(const RunResult &);
    std::uint64_t (*u)(const RunResult &);
};

constexpr Field kFields[] = {
    {"offered_gbps", Field::Type::F64,
     [](const RunResult &r) { return r.offered_gbps; }, nullptr},
    {"delivered_gbps", Field::Type::F64,
     [](const RunResult &r) { return r.delivered_gbps; }, nullptr},
    {"max_window_gbps", Field::Type::F64,
     [](const RunResult &r) { return r.max_window_gbps; }, nullptr},
    {"p99_us", Field::Type::F64,
     [](const RunResult &r) { return r.p99_us; }, nullptr},
    {"mean_us", Field::Type::F64,
     [](const RunResult &r) { return r.mean_us; }, nullptr},
    {"system_power_w", Field::Type::F64,
     [](const RunResult &r) { return r.system_power_w; }, nullptr},
    {"dynamic_power_w", Field::Type::F64,
     [](const RunResult &r) { return r.dynamic_power_w; }, nullptr},
    {"energy_eff", Field::Type::F64,
     [](const RunResult &r) { return r.energy_eff; }, nullptr},
    {"loss_fraction", Field::Type::F64,
     [](const RunResult &r) { return r.lossFraction(); }, nullptr},
    {"sent", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.sent; }},
    {"responses", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.responses; }},
    {"drops", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.drops; }},
    {"in_flight_at_window_end", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.in_flight_at_window_end; }},
    {"snic_frames", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.snic_frames; }},
    {"host_frames", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.host_frames; }},
    {"slb_kept", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.slb_kept; }},
    {"slb_forwarded", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.slb_forwarded; }},
    {"final_fwd_th_gbps", Field::Type::F64,
     [](const RunResult &r) { return r.final_fwd_th_gbps; }, nullptr},
    {"faults_injected", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.faults_injected; }},
    {"faults_reverted", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.faults_reverted; }},
    {"failovers", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.failovers; }},
    {"recoveries", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.recoveries; }},
    {"degraded_us", Field::Type::F64,
     [](const RunResult &r) { return r.degraded_us; }, nullptr},
    {"time_to_recover_us", Field::Type::F64,
     [](const RunResult &r) { return r.time_to_recover_us; }, nullptr},
    {"failover_drops", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.failover_drops; }},
    {"ctrl_updates_dropped", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.ctrl_updates_dropped; }},
    {"energy_snic_cpu_j", Field::Type::F64,
     [](const RunResult &r) { return r.energy_snic_cpu_j; }, nullptr},
    {"energy_snic_accel_j", Field::Type::F64,
     [](const RunResult &r) { return r.energy_snic_accel_j; }, nullptr},
    {"energy_host_cpu_j", Field::Type::F64,
     [](const RunResult &r) { return r.energy_host_cpu_j; }, nullptr},
    {"energy_host_accel_j", Field::Type::F64,
     [](const RunResult &r) { return r.energy_host_accel_j; }, nullptr},
    {"energy_extra_j", Field::Type::F64,
     [](const RunResult &r) { return r.energy_extra_j; }, nullptr},
    {"energy_static_j", Field::Type::F64,
     [](const RunResult &r) { return r.energy_static_j; }, nullptr},
    {"energy_total_j", Field::Type::F64,
     [](const RunResult &r) { return r.energy_total_j; }, nullptr},
    {"j_per_request", Field::Type::F64,
     [](const RunResult &r) { return r.j_per_request; }, nullptr},
    {"j_per_gb", Field::Type::F64,
     [](const RunResult &r) { return r.j_per_gb; }, nullptr},
    {"slo_target_p99_us", Field::Type::F64,
     [](const RunResult &r) { return r.slo_target_p99_us; }, nullptr},
    {"slo_worst_p99_us", Field::Type::F64,
     [](const RunResult &r) { return r.slo_worst_p99_us; }, nullptr},
    {"slo_epochs", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.slo_epochs; }},
    {"slo_violation_epochs", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.slo_violation_epochs; }},
    {"fleet_backends", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_backends; }},
    {"fleet_retries", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_retries; }},
    {"fleet_timeouts", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_timeouts; }},
    {"fleet_duplicates", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_duplicates; }},
    {"fleet_sheds", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_sheds; }},
    {"fleet_requests_failed", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_requests_failed; }},
    {"fleet_failovers", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_failovers; }},
    {"fleet_flows_migrated", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_flows_migrated; }},
    {"fleet_drain_timeouts", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_drain_timeouts; }},
    {"fleet_probes_failed", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_probes_failed; }},
    {"fleet_backend_served_min", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_backend_served_min; }},
    {"fleet_backend_served_max", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fleet_backend_served_max; }},
    {"energy_fleet_j", Field::Type::F64,
     [](const RunResult &r) { return r.energy_fleet_j; }, nullptr},
    {"gov_epochs", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.gov_epochs; }},
    {"gov_rebalances", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.gov_rebalances; }},
    {"gov_migrations", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.gov_migrations; }},
    {"gov_parks", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.gov_parks; }},
    {"gov_unparks", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.gov_unparks; }},
    {"gov_min_active_cores", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.gov_min_active_cores; }},
    {"gov_max_active_cores", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.gov_max_active_cores; }},
    {"past_clamps", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.past_clamps; }},
    {"trace_spans", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.trace_spans; }},
    {"fr_dumps", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fr_dumps; }},
    {"fr_trigger_fault", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fr_trigger_fault; }},
    {"fr_trigger_slo", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fr_trigger_slo; }},
    {"fr_trigger_shed", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fr_trigger_shed; }},
    {"fr_trigger_gov", Field::Type::U64, nullptr,
     [](const RunResult &r) { return r.fr_trigger_gov; }},
};

} // namespace

void
RunResult::toJsonFields(std::ostream &os) const
{
    bool first = true;
    for (const Field &f : kFields) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << f.name << "\":";
        if (f.type == Field::Type::F64)
            os << obs::jsonNumber(f.f(*this));
        else
            os << f.u(*this);
    }
}

void
RunResult::toJson(std::ostream &os) const
{
    os << "{";
    toJsonFields(os);
    os << "}";
}

void
RunResult::toCsvRow(std::ostream &os) const
{
    bool first = true;
    for (const Field &f : kFields) {
        if (!first)
            os << ",";
        first = false;
        if (f.type == Field::Type::F64)
            os << obs::jsonNumber(f.f(*this));
        else
            os << f.u(*this);
    }
}

void
RunResult::csvHeader(std::ostream &os)
{
    bool first = true;
    for (const Field &f : kFields) {
        if (!first)
            os << ",";
        first = false;
        os << f.name;
    }
}

} // namespace halsim::core
