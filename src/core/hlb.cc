#include "core/hlb.hh"

#include <algorithm>
#include <cmath>

namespace halsim::core {

const char *
splitModeName(SplitMode m)
{
    switch (m) {
      case SplitMode::TokenBucket: return "token-bucket";
      case SplitMode::RoundRobin: return "round-robin";
      case SplitMode::FlowAffinity: return "flow-affinity";
    }
    return "?";
}

TrafficMonitor::TrafficMonitor(EventQueue &eq, Config cfg)
    : eq_(eq), cfg_(cfg)
{
    tickEvent_.setCallback([this] { tick(); });
}

TrafficMonitor::~TrafficMonitor()
{
    stop();
}

void
TrafficMonitor::start()
{
    if (!tickEvent_.scheduled())
        eq_.scheduleIn(&tickEvent_, cfg_.epoch);
}

void
TrafficMonitor::stop()
{
    if (tickEvent_.scheduled())
        eq_.deschedule(&tickEvent_);
}

void
TrafficMonitor::tick()
{
    rateRx_ = gbps(receivedBytes_, cfg_.epoch);
    receivedBytes_ = 0;
    eq_.scheduleIn(&tickEvent_, cfg_.epoch);
}

TrafficDirector::TrafficDirector(EventQueue &eq, Config cfg,
                                 TrafficMonitor &monitor,
                                 net::PacketSink &out)
    : eq_(eq), cfg_(cfg), monitor_(monitor), out_(out),
      fwdTh_(std::clamp(cfg.initial_fwd_th_gbps, 0.0, kMaxFwdThGbps)),
      lastLbpTh_(fwdTh_)
{
    // Start with a full bucket so traffic below Fwd_Th never diverts,
    // including the very first packet.
    tokens_ = cfg_.bucket_depth_us * fwdTh_ / 8.0 * 1000.0;
}

void
TrafficDirector::setFwdTh(double gbps_th)
{
    if (!std::isfinite(gbps_th))
        return;
    const double th = std::clamp(gbps_th, 0.0, kMaxFwdThGbps);
    lastLbpTh_ = th;
    lastUpdate_ = eq_.now();
    if (!failover_)
        fwdTh_ = th;
}

void
TrafficDirector::heartbeat()
{
    lastUpdate_ = eq_.now();
}

void
TrafficDirector::enterFailover(double gbps)
{
    failover_ = true;
    fwdTh_ = std::clamp(gbps, 0.0, kMaxFwdThGbps);
}

void
TrafficDirector::exitFailover()
{
    if (!failover_)
        return;
    failover_ = false;
    fwdTh_ = lastLbpTh_;
}

void
TrafficDirector::refill()
{
    const Tick now = eq_.now();
    if (now <= lastRefill_)
        return;
    // Fwd_Th Gbps -> bytes per tick.
    const double bytes_per_tick = fwdTh_ / 8.0 / 1000.0;
    const double cap = cfg_.bucket_depth_us * fwdTh_ / 8.0 * 1000.0;
    tokens_ = std::min(cap, tokens_ + bytes_per_tick *
                                static_cast<double>(now - lastRefill_));
    lastRefill_ = now;
}

// halint: hotpath
bool
TrafficDirector::shouldDivert(const net::Packet &pkt)
{
    if (cfg_.mode == SplitMode::TokenBucket) {
        refill();
        const double bytes = static_cast<double>(pkt.size());
        if (tokens_ >= bytes) {
            tokens_ -= bytes;
            return false;
        }
        return true;
    }

    // The remaining disciplines divert the excess *fraction* using
    // the monitor's epoch rate estimate.
    const double rate = monitor_.rateRxGbps();
    if (rate <= fwdTh_) {
        rrAccum_ = 0.0;
        return false;
    }
    const double excess = (rate - fwdTh_) / rate;

    if (cfg_.mode == SplitMode::FlowAffinity) {
        // Map the flow hash to [0, 1) (decorrelated from the RSS use
        // of the same hash) and divert the flows landing below the
        // excess fraction — a whole flow always goes one way.
        const std::uint32_t mixed = pkt.flowHash * 2654435761u;
        const double u =
            static_cast<double>(mixed) / 4294967296.0;
        return u < excess;
    }

    // Round-robin: evenly spread per-packet diversion.
    rrAccum_ += excess;
    if (rrAccum_ >= 1.0) {
        rrAccum_ -= 1.0;
        return true;
    }
    return false;
}

// halint: hotpath
void
TrafficDirector::accept(net::PacketPtr pkt)
{
    monitor_.onFrame(pkt->size());
    if (shouldDivert(*pkt)) {
        // Rewrite destination identity; the eSwitch does the rest.
        pkt->ip().rewriteDst(cfg_.host_ip);
        pkt->eth().setDst(cfg_.host_mac);
        pkt->directedToHost = true;
        ++toHost_;
    } else {
        ++toSnic_;
    }
    out_.accept(std::move(pkt));
}

} // namespace halsim::core
