#include "core/slb.hh"

#include <algorithm>

namespace halsim::core {

/**
 * One balancer core: drains its ring, deciding keep-vs-forward per
 * packet; forwarding costs streaming cycles on this core.
 */
class SoftwareLoadBalancer::SlbCore
{
  public:
    SlbCore(EventQueue &eq, SoftwareLoadBalancer &owner,
            nic::DpdkRing &ring)
        : eq_(eq), owner_(owner), ring_(ring)
    {
        ring_.setNotify([this] { onWork(); });
    }

    void
    onWork()
    {
        if (!busy_)
            startNext();
    }

  private:
    void
    startNext()
    {
        net::PacketPtr pkt = ring_.dequeue();
        if (pkt == nullptr) {
            busy_ = false;
            return;
        }
        busy_ = true;

        const Config &cfg = owner_.cfg_;
        const bool in_budget = owner_.takeTokens(pkt->size());
        // In the SNIC SLB the excess is forwarded; the host-side SLB
        // forwards the in-budget share instead (§IV).
        const bool forward = cfg.forward_kept ? in_budget : !in_budget;
        Tick cost = cfg.classify_cost;
        if (forward)
            cost += transferTicks(pkt->size(), cfg.fwd_gbps_per_core);

        net::Packet *raw = pkt.release();
        eq_.scheduleFnIn([this, raw, forward] { finish(raw, forward); },
                         cost);
    }

    void
    finish(net::Packet *raw, bool forward)
    {
        net::PacketPtr pkt(raw);
        const Config &cfg = owner_.cfg_;
        if (!forward) {
            ++owner_.kept_;
            owner_.localPath_.accept(std::move(pkt));
        } else {
            // tx_burst to the peer processor: rewrite the destination
            // identity and pay the long software forwarding path.
            pkt->ip().rewriteDst(cfg.fwd_ip);
            pkt->eth().setDst(cfg.fwd_mac);
            pkt->directedToHost = !cfg.forward_kept;
            ++owner_.forwarded_;
            net::Packet *p = pkt.release();
            eq_.scheduleFnIn(
                [this, p] { owner_.fwdPath_.accept(net::PacketPtr(p)); },
                cfg.fwd_path_latency);
        }
        if (!ring_.empty())
            startNext();
        else
            busy_ = false;
    }

    EventQueue &eq_;
    SoftwareLoadBalancer &owner_;
    nic::DpdkRing &ring_;
    bool busy_ = false;
};

SoftwareLoadBalancer::SoftwareLoadBalancer(EventQueue &eq, Config cfg,
                                           net::PacketSink &local_path,
                                           net::PacketSink &fwd_path,
                                           proc::PowerMeter &power)
    : eq_(eq), cfg_(cfg), localPath_(local_path), fwdPath_(fwd_path)
{
    for (unsigned i = 0; i < cfg_.slb_cores; ++i) {
        rings_.push_back(
            std::make_unique<nic::DpdkRing>(cfg_.ring_descriptors));
        cores_.push_back(
            std::make_unique<SlbCore>(eq, *this, *rings_.back()));
        rss_.addQueue(rings_.back().get());
    }
    // Balancer cores busy-poll continuously.
    power.add(cfg_.core_active_w * cfg_.slb_cores);
}

SoftwareLoadBalancer::~SoftwareLoadBalancer() = default;

bool
SoftwareLoadBalancer::takeTokens(std::size_t bytes)
{
    const Tick now = eq_.now();
    if (now > lastRefill_) {
        const double bytes_per_tick = cfg_.fwd_th_gbps / 8.0 / 1000.0;
        const double cap = cfg_.fwd_th_gbps / 8.0 * 1000.0 * 50.0;  // 50 us
        tokens_ = std::min(
            cap, tokens_ + bytes_per_tick *
                               static_cast<double>(now - lastRefill_));
        lastRefill_ = now;
    }
    if (tokens_ >= static_cast<double>(bytes)) {
        tokens_ -= static_cast<double>(bytes);
        return true;
    }
    return false;
}

std::uint64_t
SoftwareLoadBalancer::drops() const
{
    std::uint64_t n = 0;
    for (const auto &r : rings_)
        n += r->drops();
    return n - dropBase_;
}

} // namespace halsim::core
