#include "fleet/backend.hh"

#include <cassert>
#include <utility>

namespace halsim::fleet {

Backend::Backend(EventQueue &eq, Config cfg, net::PacketSink &out)
    : eq_(eq), cfg_(std::move(cfg)), out_(out)
{
    assert(cfg_.cores > 0);
    assert(cfg_.ring_capacity > 0);
    updatePower();
}

void
Backend::updatePower()
{
    double w = 0.0;
    if (crashed_) {
        w = 0.0;
    } else if (stalled_) {
        // Hung poll-mode cores spin at full draw.
        w = cfg_.cores * cfg_.core_active_w;
    } else {
        w = busy_ * cfg_.core_active_w +
            (cfg_.cores - busy_) * cfg_.core_idle_w;
    }
    power_.set(w, eq_.now());
}

void
Backend::accept(net::PacketPtr pkt)
{
    if (crashed_) {
        ++crashLost_;
        obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                        obs::SpanKind::Drop, obs::SpanPhase::Instant,
                        spanLane_, cfg_.index, 0);
        return;
    }
    const std::uint32_t occ = occupancy();
    if (occ >= cfg_.ring_capacity) {
        ++ringDrops_;
        obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                        obs::SpanKind::Drop, obs::SpanPhase::Instant,
                        spanLane_, cfg_.index, 1);
        return;
    }
    // Admission control: early-drop before the ring fills so queueing
    // delay for admitted requests stays bounded under a retry storm.
    if (cfg_.shed_watermark > 0 && occ >= cfg_.shed_watermark) {
        ++sheds_;
        obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                        obs::SpanKind::Shed, obs::SpanPhase::Instant,
                        spanLane_, cfg_.index, occ);
        if (!shedding_) {
            // Upward watermark crossing: one black-box trigger per
            // overload episode, not one per shed packet.
            shedding_ = true;
            obs::frTrigger(fr_, eq_.now(), obs::FrTrigger::Shed,
                           cfg_.index);
        }
        return;
    }
    obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                    obs::SpanKind::BackendQueue, obs::SpanPhase::Begin,
                    spanLane_, cfg_.index, occ + 1);
    queue_.push_back(std::move(pkt));
    tryDispatch();
}

void
Backend::tryDispatch()
{
    while (!stalled_ && busy_ < cfg_.cores && !queue_.empty()) {
        net::PacketPtr pkt = std::move(queue_.front());
        queue_.pop_front();
        if (shedding_ && occupancy() < cfg_.shed_watermark)
            shedding_ = false; // overload episode over; re-arm
        ++busy_;
        updatePower();
        obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                        obs::SpanKind::BackendQueue, obs::SpanPhase::End,
                        spanLane_, cfg_.index);
        obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                        obs::SpanKind::BackendService,
                        obs::SpanPhase::Begin, spanLane_, cfg_.index);
        const Tick service =
            cfg_.service_overhead +
            transferTicks(pkt->size(), cfg_.core_rate_gbps);
        const std::uint64_t inc = incarnation_;
        eq_.scheduleFnIn(
            [this, inc, p = std::move(pkt)]() mutable {
                complete(inc, std::move(p));
            },
            service);
    }
}

void
Backend::complete(std::uint64_t incarnation, net::PacketPtr pkt)
{
    // A completion from before a crash lands in a dead world: the
    // request was already counted as crashLost_ when the crash hit.
    if (incarnation != incarnation_)
        return;
    --busy_;
    ++served_;
    servedBytes_ += pkt->size();
    obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                    obs::SpanKind::BackendService, obs::SpanPhase::End,
                    spanLane_, cfg_.index);

    // Turn the request around with real header rewrites: the backend
    // answers as its service identity, back to the recorded client.
    auto eth = pkt->eth();
    eth.setSrc(cfg_.service_mac);
    eth.setDst(pkt->clientMac);
    auto ip = pkt->ip();
    ip.rewriteSrc(cfg_.service_ip);
    ip.rewriteDst(pkt->clientIp);
    auto udp = pkt->udp();
    const std::uint16_t req_dst = udp.dstPort();
    udp.setDstPort(pkt->clientPort);
    udp.setSrcPort(req_dst);
    pkt->isResponse = true;
    pkt->processedBy = net::Processor::SnicCpu;

    updatePower();
    tryDispatch();
    out_.accept(std::move(pkt));
}

void
Backend::crash()
{
    if (crashed_)
        return;
    crashed_ = true;
    stalled_ = false;
    // Everything queued or on a core dies with the node.
    const std::uint32_t lost =
        static_cast<std::uint32_t>(queue_.size() + busy_);
    crashLost_ += lost;
    queue_.clear();
    busy_ = 0;
    ++incarnation_;
    shedding_ = false;
    obs::spanMark(spans_, fr_, eq_.now(), obs::SpanKind::Drop,
                  spanLane_, cfg_.index, lost);
    updatePower();
}

void
Backend::restore()
{
    if (!crashed_)
        return;
    crashed_ = false;
    updatePower();
}

void
Backend::setStalled(bool stalled)
{
    if (crashed_ || stalled_ == stalled)
        return;
    stalled_ = stalled;
    updatePower();
    if (!stalled_)
        tryDispatch();
}

void
Backend::resetStats()
{
    power_.resetAt(eq_.now());
}

} // namespace halsim::fleet
