#include "fleet/health.hh"

#include <cassert>
#include <utility>

namespace halsim::fleet {

HealthChecker::HealthChecker(EventQueue &eq, Config cfg,
                             std::vector<Backend *> targets)
    : eq_(eq), cfg_(cfg), targets_(std::move(targets)),
      st_(targets_.size())
{
    assert(cfg_.epoch > 0);
    assert(cfg_.fall > 0);
    assert(cfg_.rise > 0);
    probeEvent_.setCallback([this] { probeAll(); });
}

HealthChecker::~HealthChecker()
{
    stop();
}

void
HealthChecker::start(Tick until)
{
    until_ = until;
    if (!probeEvent_.scheduled() &&
        eq_.now() + cfg_.epoch <= until_)
        eq_.scheduleIn(&probeEvent_, cfg_.epoch);
}

void
HealthChecker::stop()
{
    if (probeEvent_.scheduled())
        eq_.deschedule(&probeEvent_);
}

void
HealthChecker::probeAll()
{
    for (unsigned b = 0; b < targets_.size(); ++b) {
        ++probesSent_;
        bool ok = targets_[b]->probeOk();
        if (ok && probeRng_ != nullptr && probeLoss_ > 0.0 &&
            probeRng_->chance(probeLoss_)) {
            // A lost probe is indistinguishable from a dead backend.
            ++probesLost_;
            ok = false;
        }
        State &s = st_[b];
        if (ok) {
            s.consecFail = 0;
            if (!s.healthy && ++s.consecOk >= cfg_.rise) {
                s.healthy = true;
                s.consecOk = 0;
                ++upTransitions_;
                obs::spanMark(spans_, fr_, eq_.now(),
                              obs::SpanKind::HealthUp, spanLane_, b);
                if (onUp_)
                    onUp_(b);
            }
        } else {
            ++probesFailed_;
            s.consecOk = 0;
            if (s.healthy && ++s.consecFail >= cfg_.fall) {
                s.healthy = false;
                s.consecFail = 0;
                ++downTransitions_;
                obs::spanMark(spans_, fr_, eq_.now(),
                              obs::SpanKind::HealthDown, spanLane_, b);
                if (onDown_)
                    onDown_(b);
            }
        }
    }
    if (eq_.now() + cfg_.epoch <= until_)
        eq_.scheduleIn(&probeEvent_, cfg_.epoch);
}

} // namespace halsim::fleet
