#include "fleet/frontend.hh"

#include <cassert>
#include <utility>

namespace halsim::fleet {

Frontend::Frontend(EventQueue &eq, Config cfg, unsigned backends)
    : eq_(eq), cfg_(cfg), ring_(backends, cfg.vnodes),
      sinks_(backends, nullptr), pinned_(backends),
      perBackend_(backends, 0)
{}

void
Frontend::pin(std::uint32_t key, FlowState &fs, unsigned b)
{
    fs.backend = b;
    pinned_[b].push_back(key);
}

void
Frontend::accept(net::PacketPtr pkt)
{
    const std::uint32_t key = pkt->flowHash;
    auto [it, inserted] = flows_.try_emplace(key);
    FlowState &fs = it->second;
    if (inserted) {
        const auto owner = ring_.lookup(key);
        if (!owner) {
            // Whole fleet down: nothing can take this flow.
            flows_.erase(it);
            ++unroutableDrops_;
            obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                            obs::SpanKind::Drop,
                            obs::SpanPhase::Instant, spanLane_, 0, 2);
            return;
        }
        pin(key, fs, *owner);
    }
    // Established flows follow their pin even when the ring changed —
    // a backend marked down while undetected still receives (and
    // loses) its pinned traffic until the health checker fires; the
    // client's retries cover that window.
    ++fs.inFlight;
    ++dispatched_;
    ++perBackend_[fs.backend];
    obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                    obs::SpanKind::FrontendLookup,
                    obs::SpanPhase::Instant, spanLane_, fs.backend,
                    inserted ? 1 : 0);
    sinks_[fs.backend]->accept(std::move(pkt));
}

void
Frontend::onResponse(const net::Packet &pkt)
{
    auto it = flows_.find(pkt.flowHash);
    if (it == flows_.end())
        return;
    FlowState &fs = it->second;
    if (fs.inFlight > 0)
        --fs.inFlight;
    if (fs.draining && fs.inFlight == 0) {
        fs.draining = false;
        ++drainCompleted_;
    }
}

void
Frontend::onBackendDown(unsigned b)
{
    ring_.setUp(b, false);
    const std::uint64_t migratedBefore = flowsMigrated_;

    // Walk the dead backend's pinned keys, skipping entries made
    // stale by earlier migrations. Every live flow re-pins to its
    // ring successor; flows with requests still inside the dead
    // backend are tracked as draining.
    std::vector<std::uint32_t> keys = std::move(pinned_[b]);
    pinned_[b].clear();
    std::vector<std::uint32_t> drainKeys;
    for (const std::uint32_t key : keys) {
        auto it = flows_.find(key);
        if (it == flows_.end() || it->second.backend != b)
            continue; // stale: the flow moved on a previous failover
        FlowState &fs = it->second;
        const auto next = ring_.lookup(key);
        if (!next) {
            // No backend left; forget the pin so a later packet can
            // re-place the flow once something comes back up.
            flows_.erase(it);
            continue;
        }
        pin(key, fs, *next);
        ++flowsMigrated_;
        if (fs.inFlight > 0) {
            fs.draining = true;
            ++drainStarted_;
            drainKeys.push_back(key);
        }
    }

    obs::spanMark(spans_, fr_, eq_.now(), obs::SpanKind::Failover,
                  spanLane_, b,
                  static_cast<std::uint32_t>(flowsMigrated_ -
                                             migratedBefore));

    if (!drainKeys.empty()) {
        eq_.scheduleFnIn(
            [this, ks = std::move(drainKeys)] {
                for (const std::uint32_t key : ks) {
                    auto it = flows_.find(key);
                    if (it == flows_.end() || !it->second.draining)
                        continue;
                    // Requests still unanswered past the budget are
                    // written off; the client re-serves them.
                    it->second.draining = false;
                    it->second.inFlight = 0;
                    ++drainTimeouts_;
                }
            },
            cfg_.drain_timeout);
    }
}

void
Frontend::onBackendUp(unsigned b)
{
    // Only the ring changes: new flows may land here, pinned flows
    // stay with the backend they are established on.
    ring_.setUp(b, true);
}

} // namespace halsim::fleet
