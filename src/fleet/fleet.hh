/**
 * @file
 * FleetSystem: N independent backend servers behind the health-checked
 * L4 frontend, driven by the hardened fleet client — the fleet
 * resilience layer ROADMAP item 1 calls for on the way from the
 * paper's single SNIC-host server to a production cluster.
 *
 * Everything shares one EventQueue, so an entire fleet drill (crash,
 * stall, probe loss, retry storm) is a single totally ordered
 * deterministic simulation: the same seed and FaultPlan reproduce a
 * bit-identical RunResult regardless of sweep thread count
 * (test_determinism holds this).
 *
 * run() mirrors ServerSystem::run(): warmup, measurement window with
 * energy/SLO windows opened at the boundary, then — unlike the fixed
 * 10 ms server drain — a run **to quiescence**. Every event source is
 * bounded (emission and probing stop at their horizons, retries are
 * budget-bounded), so after the drain the client's attempt ledger
 * reconciles exactly: sends = completions + duplicates + fleet
 * losses, with every loss carrying a distinct drop reason.
 */

#ifndef HALSIM_FLEET_FLEET_HH
#define HALSIM_FLEET_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/server.hh"
#include "core/sweep.hh"
#include "fault/fault.hh"
#include "fleet/backend.hh"
#include "fleet/client.hh"
#include "fleet/frontend.hh"
#include "fleet/health.hh"
#include "net/link.hh"
#include "obs/energy.hh"
#include "obs/obs.hh"
#include "obs/slo.hh"
#include "sim/event_queue.hh"

namespace halsim::fleet {

/** Full fleet configuration. */
struct FleetConfig
{
    unsigned backends = 4;

    /** Template for every backend; service identities are assigned
     *  per backend by the system. */
    Backend::Config backend;

    HealthChecker::Config health;
    FleetClient::Config client;
    Frontend::Config frontend;

    /** Frontend <-> backend links. */
    double link_gbps = 100.0;
    Tick link_latency = 2 * kUs;
    std::uint32_t link_queue = 4096;

    /** Idle baseline per backend server (the paper's 194 W figure). */
    double backend_static_w = 194.0;
    /** The L4 frontend's own draw. */
    double frontend_w = 8.0;

    std::uint64_t seed = 1;

    /** Scheduled fault events, times relative to run() start. */
    fault::FaultPlan faults;

    obs::ObsConfig obs;
    obs::SloConfig slo;

    /**
     * Check the whole configuration in one pass, returning every
     * violation (each naming the offending field). Empty means valid;
     * FleetSystem's constructor throws std::invalid_argument joining
     * all of them.
     */
    std::vector<std::string> validate() const;
};

/** Feeds responses through the frontend's flow bookkeeping on their
 *  way back to the client. */
class ResponseTap : public net::PacketSink
{
  public:
    ResponseTap(Frontend &fe, net::PacketSink &next)
        : fe_(fe), next_(next)
    {}

    void
    accept(net::PacketPtr pkt) override
    {
        fe_.onResponse(*pkt);
        next_.accept(std::move(pkt));
    }

  private:
    Frontend &fe_;
    net::PacketSink &next_;
};

class FleetSystem
{
  public:
    FleetSystem(EventQueue &eq, FleetConfig cfg);
    ~FleetSystem();

    FleetSystem(const FleetSystem &) = delete;
    FleetSystem &operator=(const FleetSystem &) = delete;

    /**
     * Drive @p rate through the fleet. Same contract as
     * ServerSystem::run(), except the post-window drain runs the
     * queue to quiescence so the attempt ledger closes exactly.
     */
    core::RunResult run(std::unique_ptr<net::RateProcess> rate,
                        Tick warmup, Tick measure,
                        Tick resample_epoch = 1 * kMs);

    // --- test/inspection hooks -----------------------------------------
    const FleetConfig &config() const { return cfg_; }
    FleetClient &client() { return *client_; }
    Frontend &frontend() { return *frontend_; }
    HealthChecker &health() { return *health_; }
    Backend &backend(unsigned i) { return *backends_[i]; }
    unsigned nBackends() const
    {
        return static_cast<unsigned>(backends_.size());
    }

    /** Null unless cfg.obs enabled stats or tracing. */
    obs::Observability *obs() { return obs_.get(); }
    const obs::Observability *obs() const { return obs_.get(); }

  private:
    /** Every loss inside the fleet (backends, links, unroutable). */
    std::uint64_t totalLosses() const;
    void buildObs();

    EventQueue &eq_;
    FleetConfig cfg_;

    std::unique_ptr<Frontend> frontend_;
    std::unique_ptr<net::Link> ingressLink_;  //!< client -> frontend
    std::unique_ptr<FleetClient> client_;
    std::unique_ptr<ResponseTap> tap_;
    std::vector<std::unique_ptr<net::Link>> uplinks_;   //!< backend -> tap
    std::vector<std::unique_ptr<Backend>> backends_;
    std::vector<std::unique_ptr<net::Link>> downlinks_; //!< frontend -> backend
    std::unique_ptr<HealthChecker> health_;

    std::unique_ptr<fault::FaultInjector> injector_;

    /** Per-backend accounts + static baselines; sums exactly. */
    obs::EnergyLedger energy_;

    std::unique_ptr<obs::SloMonitor> slo_;
    std::unique_ptr<obs::Observability> obs_;
};

/** One operating point of a fleet sweep. */
struct FleetSweepPoint
{
    FleetConfig cfg;
    double rate_gbps = 0.0;
    Tick warmup = 20 * kMs;
    Tick measure = 100 * kMs;
    Tick resample = 1 * kMs;
    std::string label;
};

/**
 * Run every point (possibly in parallel) and return results in input
 * order, reusing the standard sweep harness options/artifacts
 * (bit-identical across thread counts; rows carry mode "fleet").
 */
std::vector<core::RunResult>
runFleetSweep(const std::vector<FleetSweepPoint> &points,
              const core::SweepOptions &opts = {});

/** One flat results row, schema-compatible with core::sweepRowJson. */
std::string fleetRowJson(const FleetSweepPoint &point,
                         const core::RunResult &r);

} // namespace halsim::fleet

#endif // HALSIM_FLEET_FLEET_HH
