#include "fleet/fleet.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "net/traffic.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/span.hh"
#include "sim/parallel.hh"

namespace halsim::fleet {

std::vector<std::string>
FleetConfig::validate() const
{
    std::vector<std::string> errors;
    auto fail = [&errors](std::string msg) {
        errors.push_back(std::move(msg));
    };

    if (backends == 0)
        fail("backends must be > 0");
    // Backend identities are carved out of one /24 service subnet.
    if (backends > 128)
        fail("backends must be <= 128, got " + std::to_string(backends));

    if (frontend.vnodes == 0)
        fail("frontend.vnodes must be > 0");
    if (frontend.drain_timeout <= 0)
        fail("frontend.drain_timeout must be positive");

    if (backend.cores == 0)
        fail("backend.cores must be > 0");
    if (backend.core_rate_gbps <= 0.0)
        fail("backend.core_rate_gbps must be > 0");
    if (backend.ring_capacity == 0)
        fail("backend.ring_capacity must be > 0");
    if (backend.shed_watermark > backend.ring_capacity) {
        fail("backend.shed_watermark (" +
             std::to_string(backend.shed_watermark) +
             ") must be <= ring_capacity (" +
             std::to_string(backend.ring_capacity) + ")");
    }

    if (health.epoch <= 0)
        fail("health.epoch must be positive");
    if (health.fall == 0)
        fail("health.fall must be > 0");
    if (health.rise == 0)
        fail("health.rise must be > 0");

    if (client.flows == 0)
        fail("client.flows must be > 0");
    if (client.frame_bytes < net::kFrameHeaderLen) {
        fail("client.frame_bytes must be >= " +
             std::to_string(net::kFrameHeaderLen));
    }
    if (client.resample_epoch <= 0)
        fail("client.resample_epoch must be positive");
    if (client.retry.max_retries > 0 && client.retry.timeout == 0) {
        fail("client.retry: a retry budget (max_retries > 0) needs a "
             "nonzero timeout");
    }
    if (client.retry.enabled()) {
        if (client.retry.backoff_base <= 0)
            fail("client.retry.backoff_base must be positive");
        else if (client.retry.backoff_cap < client.retry.backoff_base)
            fail("client.retry.backoff_cap must be >= backoff_base");
    }

    if (link_gbps <= 0.0)
        fail("link_gbps must be > 0");
    if (link_queue == 0)
        fail("link_queue must be > 0");
    if (backend_static_w < 0.0)
        fail("backend_static_w must be >= 0");
    if (frontend_w < 0.0)
        fail("frontend_w must be >= 0");

    if (slo.target_p99_us < 0.0)
        fail("slo.target_p99_us must be >= 0");
    if (slo.epoch <= 0)
        fail("slo.epoch must be > 0");

    if (obs.enabled()) {
        if (obs.stats && obs.sample_epoch == 0)
            fail("obs.sample_epoch must be > 0 when obs.stats is on");
        if (obs.trace && obs.trace_capacity == 0)
            fail("obs.trace_capacity must be > 0 when obs.trace is on");
        if (obs.trace && obs.trace_sample_every == 0)
            fail("obs.trace_sample_every must be > 0 when obs.trace "
                 "is on");
        if (obs.spans && obs.span_capacity == 0)
            fail("obs.span_capacity must be > 0 when obs.spans is on");
        if (obs.spans && obs.span_sample_every == 0)
            fail("obs.span_sample_every must be > 0 when obs.spans "
                 "is on");
        if (obs.flightrec && obs.fr_capacity == 0)
            fail("obs.fr_capacity must be > 0 when obs.flightrec "
                 "is on");
        if (obs.flightrec && obs.fr_max_dumps == 0)
            fail("obs.fr_max_dumps must be > 0 when obs.flightrec "
                 "is on");
    }

    return errors;
}

FleetSystem::FleetSystem(EventQueue &eq, FleetConfig cfg)
    : eq_(eq), cfg_(std::move(cfg))
{
    const std::vector<std::string> errors = cfg_.validate();
    if (!errors.empty()) {
        std::string msg = "FleetConfig: ";
        for (std::size_t i = 0; i < errors.size(); ++i) {
            if (i)
                msg += "; ";
            msg += errors[i];
        }
        throw std::invalid_argument(msg);
    }

    const net::MacAddr clientMac = net::MacAddr::fromUint(0x02000000fe01);
    const net::MacAddr frontMac = net::MacAddr::fromUint(0x02000000fe02);
    const net::Ipv4Addr clientIp(10, 0, 1, 1);
    const net::Ipv4Addr frontIp(10, 0, 1, 2);

    frontend_ =
        std::make_unique<Frontend>(eq_, cfg_.frontend, cfg_.backends);

    ingressLink_ = std::make_unique<net::Link>(
        eq_,
        net::Link::Config{cfg_.link_gbps, cfg_.link_latency,
                          cfg_.link_queue, "ingress"},
        *frontend_);

    FleetClient::Config cc = cfg_.client;
    cc.endpoints.src_mac = clientMac;
    cc.endpoints.dst_mac = frontMac;
    cc.endpoints.src_ip = clientIp;
    cc.endpoints.dst_ip = frontIp;
    cc.endpoints.src_port = 40000;
    cc.endpoints.dst_port = 9000;
    cc.seed = cfg_.seed;
    client_ = std::make_unique<FleetClient>(eq_, cc, *ingressLink_);

    tap_ = std::make_unique<ResponseTap>(*frontend_, *client_);

    std::vector<Backend *> targets;
    targets.reserve(cfg_.backends);
    for (unsigned i = 0; i < cfg_.backends; ++i) {
        uplinks_.push_back(std::make_unique<net::Link>(
            eq_,
            net::Link::Config{cfg_.link_gbps, cfg_.link_latency,
                              cfg_.link_queue,
                              "up" + std::to_string(i)},
            *tap_));

        Backend::Config bc = cfg_.backend;
        bc.service_mac =
            net::MacAddr::fromUint(0x020000001000ull + i);
        bc.service_ip = net::Ipv4Addr(
            10, 0, 2, static_cast<std::uint8_t>(10 + i));
        bc.name = "backend" + std::to_string(i);
        bc.index = i;
        backends_.push_back(
            std::make_unique<Backend>(eq_, bc, *uplinks_.back()));

        downlinks_.push_back(std::make_unique<net::Link>(
            eq_,
            net::Link::Config{cfg_.link_gbps, cfg_.link_latency,
                              cfg_.link_queue,
                              "down" + std::to_string(i)},
            *backends_.back()));
        frontend_->setBackendSink(i, downlinks_.back().get());
        targets.push_back(backends_.back().get());
    }

    health_ = std::make_unique<HealthChecker>(eq_, cfg_.health,
                                              std::move(targets));
    health_->setOnDown(
        [this](unsigned b) { frontend_->onBackendDown(b); });
    health_->setOnUp([this](unsigned b) { frontend_->onBackendUp(b); });

    // --- energy ledger: one account per backend, summing exactly ------
    for (unsigned i = 0; i < cfg_.backends; ++i) {
        Backend *b = backends_[i].get();
        energy_.addDynamic(
            "backend" + std::to_string(i),
            [b] { return b->joulesNow(); },
            [b] { return b->currentW(); });
    }
    energy_.addStatic("static",
                      cfg_.backend_static_w *
                          static_cast<double>(cfg_.backends));
    energy_.addStatic("frontend", cfg_.frontend_w);

    if (cfg_.slo.enabled()) {
        slo_ = std::make_unique<obs::SloMonitor>(cfg_.slo);
        client_->setSlo(slo_.get());
    }

    buildObs();
}

FleetSystem::~FleetSystem() = default;

void
FleetSystem::buildObs()
{
    if (!cfg_.obs.enabled())
        return;
    obs_ = std::make_unique<obs::Observability>(eq_, cfg_.obs);

    obs::SpanTracer *sp = obs_->spans();
    obs::FlightRecorder *fr = obs_->flightRecorder();
    if (sp != nullptr || fr != nullptr) {
        const auto nameLane = [sp, fr](obs::SpanLane l,
                                       const char *name) {
            if (sp != nullptr)
                sp->setLaneName(obs::spanLaneId(l), name);
            if (fr != nullptr)
                fr->setLaneName(obs::spanLaneId(l), name);
        };
        nameLane(obs::SpanLane::Client, "client");
        nameLane(obs::SpanLane::Frontend, "frontend");
        nameLane(obs::SpanLane::Backend, "backend");
        nameLane(obs::SpanLane::Health, "health");
        client_->attachSpans(sp, fr,
                             obs::spanLaneId(obs::SpanLane::Client));
        frontend_->attachSpans(
            sp, fr, obs::spanLaneId(obs::SpanLane::Frontend));
        for (auto &b : backends_) {
            b->attachSpans(sp, fr,
                           obs::spanLaneId(obs::SpanLane::Backend));
        }
        health_->attachSpans(sp, fr,
                             obs::spanLaneId(obs::SpanLane::Health));
    }
    if (fr != nullptr && slo_ != nullptr) {
        slo_->setOnViolation([this, fr](Tick, double p99_us) {
            obs::frTrigger(fr, eq_.now(), obs::FrTrigger::Slo,
                           static_cast<std::uint32_t>(p99_us));
        });
    }

    obs::StatsRegistry *reg =
        cfg_.obs.stats ? &obs_->registry() : nullptr;
    if (reg == nullptr)
        return;

    reg->fnCounter("fleet.client.sends",
                   [this] { return client_->sends(); });
    reg->fnCounter("fleet.client.unique_requests",
                   [this] { return client_->uniqueRequests(); });
    reg->fnCounter("fleet.client.retries",
                   [this] { return client_->retries(); });
    reg->fnCounter("fleet.client.timeouts",
                   [this] { return client_->timeouts(); });
    reg->fnCounter("fleet.client.duplicates",
                   [this] { return client_->duplicates(); });
    reg->fnCounter("fleet.client.completions",
                   [this] { return client_->completions(); });
    reg->fnCounter("fleet.client.failed",
                   [this] { return client_->failed(); });
    reg->fnGauge("fleet.client.outstanding", [this] {
        return static_cast<double>(client_->outstanding());
    });
    // Window-scoped attempts-per-request distribution: resetAll()
    // zeroes it at the warmup boundary; the client's own monotone
    // histogram keeps the exact whole-run ledger.
    client_->setAttemptsSink(
        reg->histogram("fleet.client.attempts", 1.0, 1024.0, 16));

    // Span/flight-recorder health. Null-safe reads so the paths the
    // bench schema requires exist in every stats artifact, reading
    // zero while spans/flightrec are off.
    reg->fnCounter("fleet.trace.spans_recorded", [this] {
        const obs::SpanTracer *t = obs_->spans();
        return t != nullptr ? t->recorded() : 0;
    });
    reg->fnCounter("fleet.trace.spans_overwritten", [this] {
        const obs::SpanTracer *t = obs_->spans();
        return t != nullptr ? t->overwritten() : 0;
    });
    reg->fnCounter("fleet.trace.spans_retained", [this] {
        const obs::SpanTracer *t = obs_->spans();
        return t != nullptr
                   ? static_cast<std::uint64_t>(t->size())
                   : 0;
    });
    const auto frCount =
        [this](std::uint64_t (obs::FlightRecorder::*read)() const) {
            const obs::FlightRecorder *f = obs_->flightRecorder();
            return f != nullptr ? (f->*read)() : 0;
        };
    reg->fnCounter("fleet.flightrec.recorded", [frCount] {
        return frCount(&obs::FlightRecorder::recorded);
    });
    reg->fnCounter("fleet.flightrec.dumps", [frCount] {
        return frCount(&obs::FlightRecorder::dumps);
    });
    reg->fnCounter("fleet.flightrec.dumps_dropped", [frCount] {
        return frCount(&obs::FlightRecorder::dumpsDropped);
    });
    const auto frTriggers = [this](obs::FrTrigger t) {
        const obs::FlightRecorder *f = obs_->flightRecorder();
        return f != nullptr ? f->triggers(t) : 0;
    };
    reg->fnCounter("fleet.flightrec.triggers_fault", [frTriggers] {
        return frTriggers(obs::FrTrigger::Fault);
    });
    reg->fnCounter("fleet.flightrec.triggers_slo", [frTriggers] {
        return frTriggers(obs::FrTrigger::Slo);
    });
    reg->fnCounter("fleet.flightrec.triggers_shed", [frTriggers] {
        return frTriggers(obs::FrTrigger::Shed);
    });
    reg->fnCounter("fleet.flightrec.triggers_gov", [frTriggers] {
        return frTriggers(obs::FrTrigger::Gov);
    });

    reg->fnCounter("fleet.frontend.dispatched",
                   [this] { return frontend_->dispatched(); });
    reg->fnCounter("fleet.frontend.unroutable_drops",
                   [this] { return frontend_->unroutableDrops(); });
    reg->fnCounter("fleet.frontend.flows_migrated",
                   [this] { return frontend_->flowsMigrated(); });
    reg->fnCounter("fleet.frontend.drains_started",
                   [this] { return frontend_->drainStarted(); });
    reg->fnCounter("fleet.frontend.drains_completed",
                   [this] { return frontend_->drainCompleted(); });
    reg->fnCounter("fleet.frontend.drain_timeouts",
                   [this] { return frontend_->drainTimeouts(); });
    reg->fnGauge("fleet.frontend.flows", [this] {
        return static_cast<double>(frontend_->flowCount());
    });
    reg->fnCounter("fleet.frontend.ingress_drops", [this] {
        return ingressLink_->drops() + ingressLink_->faultDrops();
    });

    reg->fnCounter("fleet.health.probes_sent",
                   [this] { return health_->probesSent(); });
    reg->fnCounter("fleet.health.probes_failed",
                   [this] { return health_->probesFailed(); });
    reg->fnCounter("fleet.health.probes_lost",
                   [this] { return health_->probesLost(); });
    reg->fnCounter("fleet.health.down_transitions",
                   [this] { return health_->downTransitions(); });
    reg->fnCounter("fleet.health.up_transitions",
                   [this] { return health_->upTransitions(); });

    for (unsigned i = 0; i < nBackends(); ++i) {
        const std::string p = "fleet.backend" + std::to_string(i);
        Backend *b = backends_[i].get();
        reg->fnCounter(p + ".served",
                       [b] { return b->served(); });
        reg->fnCounter(p + ".sheds", [b] { return b->sheds(); });
        reg->fnCounter(p + ".ring_drops",
                       [b] { return b->ringDrops(); });
        reg->fnCounter(p + ".crash_lost",
                       [b] { return b->crashLost(); });
        reg->fnCounter(p + ".dispatched", [this, i] {
            return frontend_->dispatchedTo(i);
        });
        reg->probe(p + ".occupancy", [b] {
            return static_cast<double>(b->occupancy());
        });
        net::Link *down = downlinks_[i].get();
        net::Link *up = uplinks_[i].get();
        reg->fnCounter(p + ".downlink_drops", [down] {
            return down->drops() + down->faultDrops();
        });
        reg->fnCounter(p + ".uplink_drops", [up] {
            return up->drops() + up->faultDrops();
        });
    }

    energy_.attachObs(reg, "fleet.energy", cfg_.obs.series);

    if (slo_ != nullptr) {
        reg->fnCounter("fleet.slo.epochs",
                       [this] { return slo_->epochs(); });
        reg->fnCounter("fleet.slo.violation_epochs",
                       [this] { return slo_->violationEpochs(); });
        reg->fnGauge("fleet.slo.target_p99_us",
                     [this] { return slo_->targetP99Us(); });
        reg->fnGauge("fleet.slo.worst_epoch_p99_us",
                     [this] { return slo_->worstEpochP99Us(); });
    }
}

std::uint64_t
FleetSystem::totalLosses() const
{
    std::uint64_t n = frontend_->unroutableDrops();
    n += ingressLink_->drops() + ingressLink_->faultDrops();
    for (const auto &b : backends_)
        n += b->losses();
    for (const auto &l : downlinks_)
        n += l->drops() + l->faultDrops();
    for (const auto &l : uplinks_)
        n += l->drops() + l->faultDrops();
    return n;
}

core::RunResult
FleetSystem::run(std::unique_ptr<net::RateProcess> rate, Tick warmup,
                 Tick measure, Tick resample_epoch)
{
    const Tick start = eq_.now();
    const Tick measure_start = start + warmup;
    const Tick end = measure_start + measure;

    if (!cfg_.faults.empty()) {
        fault::FaultHooks fh;
        fh.fleet_crash = [this](unsigned i, bool on) {
            if (i >= backends_.size())
                return false;
            if (on)
                backends_[i]->crash();
            else
                backends_[i]->restore();
            return true;
        };
        fh.fleet_stall = [this](unsigned i, bool on) {
            if (i >= backends_.size())
                return false;
            backends_[i]->setStalled(on);
            return true;
        };
        fh.probe_impair = [this](double loss, Rng *rng) {
            health_->setProbeImpairment(loss, rng);
        };
        fh.probe_restore = [this] {
            health_->clearProbeImpairment();
        };
        fh.on_inject = [this](const fault::FaultEvent &ev) {
            obs::frTrigger(obs_ != nullptr ? obs_->flightRecorder()
                                           : nullptr,
                           eq_.now(), obs::FrTrigger::Fault,
                           ev.index);
        };
        injector_ = std::make_unique<fault::FaultInjector>(
            eq_, cfg_.faults, std::move(fh));
        injector_->start(start);
    }

    // Probing outlives the traffic window by the drain budget so a
    // crash near the end is still detected while the fleet drains.
    health_->start(end + cfg_.frontend.drain_timeout);
    client_->setResampleEpoch(resample_epoch);
    client_->start(std::move(rate), end);

    // Guarded so a zero-warmup run snapshots its bases before the
    // first emission (runUntil executes events at exactly `until`,
    // which would otherwise slip one send under the baseline and
    // break the exact attempt-ledger reconciliation).
    if (measure_start > eq_.now())
        eq_.runUntil(measure_start);

    // Reset windows at the warmup boundary; monotone counters are
    // snapshot-differenced instead.
    client_->resetMeasurement();
    for (auto &b : backends_)
        b->resetStats();

    const std::uint64_t sends_base = client_->sends();
    const std::uint64_t sent_bytes_base = client_->sentBytes();
    const std::uint64_t retries_base = client_->retries();
    const std::uint64_t timeouts_base = client_->timeouts();
    const std::uint64_t dups_base = client_->duplicates();
    const std::uint64_t completions_base = client_->completions();
    const std::uint64_t failed_base = client_->failed();
    const std::uint64_t losses_base = totalLosses();
    std::uint64_t sheds_base = 0;
    for (const auto &b : backends_)
        sheds_base += b->sheds();
    const std::uint64_t migrated_base = frontend_->flowsMigrated();
    const std::uint64_t draintmo_base = frontend_->drainTimeouts();
    const std::uint64_t downs_base = health_->downTransitions();
    const std::uint64_t pfailed_base = health_->probesFailed();
    std::vector<std::uint64_t> served_base(backends_.size());
    for (std::size_t i = 0; i < backends_.size(); ++i)
        served_base[i] = backends_[i]->served();

    energy_.beginWindow(eq_.now());
    if (slo_ != nullptr)
        slo_->beginWindow(measure_start, end);
    if (obs_ != nullptr) {
        obs_->registry().resetAll();
        if (obs_->tracer() != nullptr)
            obs_->tracer()->clear();
        if (obs_->spans() != nullptr)
            obs_->spans()->clear();
        if (obs_->flightRecorder() != nullptr)
            obs_->flightRecorder()->clear();
        obs_->startSampling(end);
    }

    // Windowed delivered-throughput sampler (same contract as the
    // single-server run: the window tracks the resample epoch).
    double max_window = 0.0;
    const Tick window = std::max<Tick>(resample_epoch, 1 * kMs);
    std::uint64_t last_bytes = client_->deliveredBytes();
    CallbackEvent sampler;
    sampler.setCallback([&] {
        const std::uint64_t b = client_->deliveredBytes();
        max_window =
            std::max(max_window, gbps(b - last_bytes, window));
        last_bytes = b;
        if (eq_.now() + window <= end)
            eq_.scheduleIn(&sampler, window);
    });
    eq_.scheduleIn(&sampler, window);

    eq_.runUntil(end);
    if (sampler.scheduled())
        eq_.deschedule(&sampler);
    if (obs_ != nullptr)
        obs_->stopSampling();

    core::RunResult r;
    double dyn = 0.0;
    for (const auto &b : backends_)
        dyn += b->averageW();
    r.dynamic_power_w = dyn;
    r.system_power_w =
        cfg_.backend_static_w * static_cast<double>(backends_.size()) +
        cfg_.frontend_w + dyn;

    // Close the energy/SLO windows before the drain so drained
    // requests' draw and latencies stay out of the window.
    energy_.endWindow(eq_.now());
    if (slo_ != nullptr)
        slo_->finishWindow();
    r.offered_gbps = gbps(client_->sentBytes() - sent_bytes_base,
                          end - measure_start);
    r.delivered_gbps = client_->deliveredGbps();

    {
        const std::uint64_t sent_w = client_->sends() - sends_base;
        const std::uint64_t resolved =
            (client_->completions() - completions_base) +
            (client_->duplicates() - dups_base) +
            (totalLosses() - losses_base);
        r.in_flight_at_window_end =
            sent_w > resolved ? sent_w - resolved : 0;
    }

    // Drain to quiescence. Every event source is bounded — emission
    // stopped at `end`, probing stops after the drain budget, retries
    // are budget-bounded — so the queue empties and the attempt
    // ledger closes exactly: every attempt sent in the window is now
    // a completion, a suppressed duplicate, or a loss with a reason
    // (modulo requests parked inside a still-stalled backend).
    eq_.run();

    r.sent = client_->sends() - sends_base;
    r.responses = client_->completions() - completions_base;
    r.max_window_gbps = std::max(max_window, r.delivered_gbps);
    r.p99_us = client_->p99Us();
    r.mean_us = client_->meanUs();
    r.energy_eff = r.system_power_w > 0.0
                       ? r.delivered_gbps / r.system_power_w
                       : 0.0;
    r.drops = totalLosses() - losses_base;

    r.fleet_backends = backends_.size();
    r.fleet_retries = client_->retries() - retries_base;
    r.fleet_timeouts = client_->timeouts() - timeouts_base;
    r.fleet_duplicates = client_->duplicates() - dups_base;
    std::uint64_t sheds = 0;
    for (const auto &b : backends_)
        sheds += b->sheds();
    r.fleet_sheds = sheds - sheds_base;
    r.fleet_requests_failed = client_->failed() - failed_base;
    r.fleet_failovers = health_->downTransitions() - downs_base;
    r.fleet_flows_migrated = frontend_->flowsMigrated() - migrated_base;
    r.fleet_drain_timeouts = frontend_->drainTimeouts() - draintmo_base;
    r.fleet_probes_failed = health_->probesFailed() - pfailed_base;
    std::uint64_t smin = ~0ull, smax = 0;
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        const std::uint64_t s = backends_[i]->served() - served_base[i];
        smin = std::min(smin, s);
        smax = std::max(smax, s);
    }
    r.fleet_backend_served_min = smin;
    r.fleet_backend_served_max = smax;
    r.past_clamps = eq_.pastClamps();

    if (obs_ != nullptr) {
        if (const obs::SpanTracer *t = obs_->spans(); t != nullptr)
            r.trace_spans = t->recorded();
        if (obs::FlightRecorder *f = obs_->flightRecorder();
            f != nullptr) {
            // The drain ran every scheduled flush; this only closes
            // dumps whose post window outlived the whole run.
            f->finalizePending(eq_.now());
            r.fr_dumps = f->dumps();
            r.fr_trigger_fault = f->triggers(obs::FrTrigger::Fault);
            r.fr_trigger_slo = f->triggers(obs::FrTrigger::Slo);
            r.fr_trigger_shed = f->triggers(obs::FrTrigger::Shed);
            r.fr_trigger_gov = f->triggers(obs::FrTrigger::Gov);
        }
    }

    if (injector_ != nullptr) {
        r.faults_injected = injector_->injected();
        r.faults_reverted = injector_->reverted();
        // Cancel remaining timers and heal any still-active fault so
        // back-to-back runs on one system start from health (and the
        // health checker drops its pointer into the injector's RNG).
        injector_->stop();
        injector_.reset();
    }

    // --- energy breakdown (window fixed above, pre-drain) ------------
    double fleet_j = 0.0;
    for (std::size_t i = 0; i < backends_.size(); ++i)
        fleet_j += energy_.joules("backend" + std::to_string(i));
    r.energy_fleet_j = fleet_j;
    r.energy_static_j = energy_.joules("static");
    r.energy_extra_j = energy_.joules("frontend");
    r.energy_total_j = energy_.totalJ();
    r.j_per_request = r.responses > 0
                          ? r.energy_total_j /
                                static_cast<double>(r.responses)
                          : 0.0;
    const double window_gb = r.delivered_gbps * energy_.windowSeconds();
    r.j_per_gb = window_gb > 0.0 ? r.energy_total_j / window_gb : 0.0;

    if (slo_ != nullptr) {
        r.slo_target_p99_us = slo_->targetP99Us();
        r.slo_worst_p99_us = slo_->worstEpochP99Us();
        r.slo_epochs = slo_->epochs();
        r.slo_violation_epochs = slo_->violationEpochs();
    }

    health_->stop();
    client_->stop();

    return r;
}

std::string
fleetRowJson(const FleetSweepPoint &point, const core::RunResult &r)
{
    std::ostringstream os;
    os << "{\"label\":\"" << obs::jsonEscape(point.label) << "\""
       << ",\"mode\":\"fleet\",\"function\":\"fleet\""
       << ",\"rate_gbps\":" << obs::jsonNumber(point.rate_gbps) << ",";
    r.toJsonFields(os);
    os << "}";
    return os.str();
}

std::vector<core::RunResult>
runFleetSweep(const std::vector<FleetSweepPoint> &points,
              const core::SweepOptions &opts)
{
    const bool want_stats = !opts.stats_path.empty();
    const bool want_spans = !opts.span_path.empty();
    const bool want_fr = !opts.flightrec_path.empty();

    std::vector<core::RunResult> results(points.size());
    std::vector<std::string> stats(points.size());
    std::vector<std::string> spans(points.size());
    std::vector<std::string> frs(points.size());
    parallelFor(points.size(), opts.threads, [&](std::size_t i) {
        FleetSweepPoint p = points[i];
        p.cfg.obs.stats = p.cfg.obs.stats || want_stats;
        p.cfg.obs.spans = p.cfg.obs.spans || want_spans;
        if (want_fr) {
            p.cfg.obs.flightrec = true;
            if (opts.fr_armed != 0)
                p.cfg.obs.fr_armed = opts.fr_armed;
            else if (p.cfg.obs.fr_armed == 0)
                p.cfg.obs.fr_armed =
                    (1u << obs::kFrTriggerKinds) - 1;
        }
        if (opts.slo_p99_us > 0.0 && !p.cfg.slo.enabled())
            p.cfg.slo.target_p99_us = opts.slo_p99_us;
        EventQueue eq;
        FleetSystem sys(eq, p.cfg);
        auto rate = std::make_unique<net::ConstantRate>(p.rate_gbps);
        results[i] =
            sys.run(std::move(rate), p.warmup, p.measure, p.resample);
        if (want_stats && sys.obs() != nullptr) {
            std::ostringstream os;
            sys.obs()->writeStatsJson(os);
            stats[i] = os.str();
        }
        if (want_spans && sys.obs() != nullptr &&
            sys.obs()->spans() != nullptr) {
            std::ostringstream os;
            bool first = true;
            sys.obs()->spans()->writeChromeEvents(
                os, static_cast<int>(i), first);
            spans[i] = os.str();
        }
        if (want_fr && sys.obs() != nullptr &&
            sys.obs()->flightRecorder() != nullptr) {
            std::ostringstream os;
            sys.obs()->flightRecorder()->writeJson(os);
            frs[i] = os.str();
        }
    });

    if (!opts.json_path.empty()) {
        obs::SweepReport rep(opts.bench_name, opts.threads);
        for (std::size_t i = 0; i < points.size(); ++i)
            rep.addRow(fleetRowJson(points[i], results[i]));
        rep.saveResultsJson(opts.json_path);
    }
    if (want_stats) {
        obs::SweepReport rep(opts.bench_name, opts.threads);
        for (std::size_t i = 0; i < points.size(); ++i)
            rep.addStats(points[i].label, stats[i]);
        rep.saveStatsJson(opts.stats_path);
    }
    if (want_spans) {
        obs::SweepReport rep(opts.bench_name, opts.threads);
        if (!points.empty())
            rep.setTraceMetadata("fleet", points[0].cfg.seed);
        for (std::size_t i = 0; i < points.size(); ++i)
            rep.addTraceEvents(spans[i]);
        rep.saveTraceJson(opts.span_path);
    }
    if (want_fr) {
        obs::SweepReport rep(opts.bench_name, opts.threads);
        for (std::size_t i = 0; i < points.size(); ++i)
            rep.addFlightRec(points[i].label, frs[i]);
        rep.saveFlightRecJson(opts.flightrec_path);
    }
    return results;
}

} // namespace halsim::fleet
