/**
 * @file
 * One fleet backend: a queueing model of a HAL server behind the L4
 * frontend, with admission control and fault handles.
 *
 * The backend is deliberately lighter than core::ServerSystem — the
 * fleet layer studies *fleet-level* failure behaviour (crash, stall,
 * shedding, retry storms), so each backend models a bounded ingress
 * ring feeding a fixed pool of service cores at a calibrated per-core
 * rate, not the full HLB/LBP datapath. All backends share the run's
 * single EventQueue, keeping the whole fleet one totally ordered
 * deterministic simulation.
 *
 * Drop taxonomy (each with its own counter, so RunResult can
 * reconcile client sends exactly):
 *  - ringDrops():  the bounded ingress ring overflowed (tail drop);
 *  - sheds():      admission control turned the request away early
 *                  because ring occupancy crossed the shed watermark
 *                  (deterministic early-drop, distinct from overflow);
 *  - crashLost():  the packet died in a crashed backend (either it
 *                  arrived while down, or it was queued/in service
 *                  when the crash hit).
 */

#ifndef HALSIM_FLEET_BACKEND_HH
#define HALSIM_FLEET_BACKEND_HH

#include <cstdint>
#include <deque>
#include <string>

#include "net/addr.hh"
#include "net/packet.hh"
#include "obs/hooks.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace halsim::fleet {

class Backend : public net::PacketSink
{
  public:
    struct Config
    {
        unsigned cores = 4;             //!< parallel service cores
        double core_rate_gbps = 10.0;   //!< per-core service rate
        Tick service_overhead = 2 * kUs; //!< fixed per-request cost
        std::uint32_t ring_capacity = 512; //!< bounded ingress ring
        /** Shed when ring occupancy reaches this; 0 disables
         *  admission control (the no-shedding ablation). */
        std::uint32_t shed_watermark = 0;
        double core_active_w = 8.0;     //!< per busy core
        double core_idle_w = 1.0;       //!< per idle (sleeping) core
        /** Responses carry this service identity back to the client. */
        net::MacAddr service_mac;
        net::Ipv4Addr service_ip;
        std::string name = "backend";
        /** Fleet index; span args identify the backend with it. */
        unsigned index = 0;
    };

    Backend(EventQueue &eq, Config cfg, net::PacketSink &out);

    /** Ingest one request (may shed, tail-drop, or blackhole). */
    void accept(net::PacketPtr pkt) override;

    // --- fault handles (driven by the FaultInjector) ------------------

    /** Fail-stop: queued + in-service packets are lost, new arrivals
     *  blackhole, power drops to zero. */
    void crash();

    /** Recover from a crash (empty ring, cores idle). */
    void restore();

    /**
     * Hang the service cores: in-flight requests still complete, but
     * nothing new is picked up and health probes fail. A hung DPDK
     * core busy-waits, so the stalled backend draws full active power.
     */
    void setStalled(bool stalled);

    /** What a health probe sees: responsive iff neither crashed nor
     *  stalled. */
    bool probeOk() const { return !crashed_ && !stalled_; }

    bool crashed() const { return crashed_; }
    bool stalled() const { return stalled_; }

    /** Attach span/flight-recorder sinks (null = off): sampled
     *  requests get queue/service spans; shed-watermark upward
     *  crossings fire the Shed flight-recorder trigger. */
    void
    attachSpans(obs::SpanTracer *spans, obs::FlightRecorder *fr,
                std::uint8_t lane)
    {
        spans_ = spans;
        fr_ = fr;
        spanLane_ = lane;
    }

    // --- measurement ---------------------------------------------------

    /** Restart the power/throughput windows at the warmup boundary
     *  (monotone counters are snapshot-differenced instead). */
    void resetStats();

    std::uint64_t served() const { return served_; }
    std::uint64_t servedBytes() const { return servedBytes_; }
    std::uint64_t sheds() const { return sheds_; }
    std::uint64_t ringDrops() const { return ringDrops_; }
    std::uint64_t crashLost() const { return crashLost_; }

    /** All losses inside this backend. */
    std::uint64_t
    losses() const
    {
        return sheds_ + ringDrops_ + crashLost_;
    }

    /** Requests waiting in the ingress ring. */
    std::uint32_t occupancy() const
    {
        return static_cast<std::uint32_t>(queue_.size());
    }

    unsigned inService() const { return busy_; }

    // --- power (feeds the fleet EnergyLedger) --------------------------

    /** Monotone joules since construction. */
    double
    joulesNow() const
    {
        return power_.integral(eq_.now()) / static_cast<double>(kSec);
    }

    double currentW() const { return power_.value(); }

    /** Time-averaged watts since the last resetStats(). */
    double averageW() const { return power_.average(eq_.now()); }

    const Config &config() const { return cfg_; }

  private:
    void tryDispatch();
    void complete(std::uint64_t incarnation, net::PacketPtr pkt);
    void updatePower();

    EventQueue &eq_;
    Config cfg_;
    net::PacketSink &out_;

    std::deque<net::PacketPtr> queue_;
    unsigned busy_ = 0;
    bool crashed_ = false;
    bool stalled_ = false;
    /** Bumped on crash so completions scheduled before the crash
     *  land in a dead world and vanish instead of resurrecting. */
    std::uint64_t incarnation_ = 0;

    std::uint64_t served_ = 0;
    std::uint64_t servedBytes_ = 0;
    std::uint64_t sheds_ = 0;
    std::uint64_t ringDrops_ = 0;
    std::uint64_t crashLost_ = 0;

    TimeWeighted power_;

    obs::SpanTracer *spans_ = nullptr;
    obs::FlightRecorder *fr_ = nullptr;
    std::uint8_t spanLane_ = 0;
    /** True while occupancy sits at/above the shed watermark; the
     *  Shed trigger fires only on the upward crossing. */
    bool shedding_ = false;
};

} // namespace halsim::fleet

#endif // HALSIM_FLEET_BACKEND_HH
