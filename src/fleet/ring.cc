#include "fleet/ring.hh"

#include <algorithm>
#include <cassert>

namespace halsim::fleet {

HashRing::HashRing(unsigned backends, unsigned vnodes)
    : up_(backends, 1), upCount_(backends)
{
    assert(backends > 0);
    assert(vnodes > 0);
    points_.reserve(static_cast<std::size_t>(backends) * vnodes);
    for (unsigned b = 0; b < backends; ++b) {
        for (unsigned v = 0; v < vnodes; ++v) {
            const std::uint64_t pos = mix64(
                (static_cast<std::uint64_t>(b) << 32) | v);
            points_.emplace_back(pos, b);
        }
    }
    std::sort(points_.begin(), points_.end());
}

void
HashRing::setUp(unsigned backend, bool up)
{
    assert(backend < up_.size());
    const char v = up ? 1 : 0;
    if (up_[backend] == v)
        return;
    up_[backend] = v;
    upCount_ += up ? 1u : -1u;
}

std::optional<unsigned>
HashRing::lookup(std::uint64_t key) const
{
    if (upCount_ == 0)
        return std::nullopt;
    const std::uint64_t pos = mix64(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), pos,
        [](const auto &p, std::uint64_t v) { return p.first < v; });
    // Clockwise walk (wrapping) to the first up backend.
    for (std::size_t n = 0; n < points_.size(); ++n) {
        if (it == points_.end())
            it = points_.begin();
        if (up_[it->second] != 0)
            return it->second;
        ++it;
    }
    return std::nullopt;
}

std::optional<unsigned>
HashRing::successor(std::uint64_t key, unsigned excluding) const
{
    const std::uint64_t pos = mix64(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), pos,
        [](const auto &p, std::uint64_t v) { return p.first < v; });
    for (std::size_t n = 0; n < points_.size(); ++n) {
        if (it == points_.end())
            it = points_.begin();
        if (it->second != excluding && up_[it->second] != 0)
            return it->second;
        ++it;
    }
    return std::nullopt;
}

} // namespace halsim::fleet
