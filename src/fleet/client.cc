#include "fleet/client.hh"

#include <algorithm>
#include <cassert>

#include "fleet/ring.hh"

namespace halsim::fleet {

FleetClient::FleetClient(EventQueue &eq, Config cfg,
                         net::PacketSink &sink)
    : eq_(eq), cfg_(std::move(cfg)), sink_(sink), rng_(cfg_.seed)
{
    assert(cfg_.flows > 0);
    assert(cfg_.frame_bytes >= net::kFrameHeaderLen);
    emitEvent_.setCallback([this] { emitOne(); });
    resampleEvent_.setCallback([this] { resample(); });
}

FleetClient::~FleetClient()
{
    stop();
}

void
FleetClient::start(std::unique_ptr<net::RateProcess> rate, Tick until)
{
    assert(rate != nullptr);
    rate_ = std::move(rate);
    until_ = until;
    resample();
    if (!emitEvent_.scheduled())
        eq_.scheduleIn(&emitEvent_, 0);
}

void
FleetClient::stop()
{
    if (emitEvent_.scheduled())
        eq_.deschedule(&emitEvent_);
    if (resampleEvent_.scheduled())
        eq_.deschedule(&resampleEvent_);
}

void
FleetClient::resample()
{
    rateGbps_ = std::max(rate_->sample(rng_), cfg_.min_rate_gbps);
    if (eq_.now() + cfg_.resample_epoch <= until_)
        eq_.scheduleIn(&resampleEvent_, cfg_.resample_epoch);
}

void
FleetClient::emitOne()
{
    const Tick now = eq_.now();
    if (now >= until_)
        return;

    const std::uint64_t id = nextId_++;
    ++unique_;
    const auto flow =
        static_cast<std::uint32_t>(rng_.uniformInt(cfg_.flows));
    Pending p;
    p.flowHash = static_cast<std::uint32_t>(mix64(flow) >> 32);
    p.firstTx = now;
    // ids are strictly increasing, so the emplace always inserts.
    auto it = pending_.emplace(id, p).first;
    obs::spanRecord(spans_, fr_, now, id, obs::SpanKind::Request,
                    obs::SpanPhase::Begin, spanLane_, flow);
    sendAttempt(id, it->second);

    const Tick gap = transferTicks(cfg_.frame_bytes, rateGbps_);
    const Tick next = now + std::max<Tick>(gap, 1);
    if (next < until_)
        eq_.schedule(&emitEvent_, next);
}

void
FleetClient::sendAttempt(std::uint64_t id, Pending &p)
{
    static constexpr std::uint8_t kEmpty[1] = {0};
    auto pkt = net::makeUdpPacket(
        cfg_.endpoints.src_mac, cfg_.endpoints.dst_mac,
        cfg_.endpoints.src_ip, cfg_.endpoints.dst_ip,
        cfg_.endpoints.src_port, cfg_.endpoints.dst_port,
        std::span<const std::uint8_t>(kEmpty, 0), cfg_.frame_bytes);
    pkt->id = id;
    // Retransmissions keep the original timestamp: latency is
    // first-send to first-response, so retries surface in the tail.
    pkt->clientTx = p.firstTx;
    pkt->flowHash = p.flowHash;
    pkt->clientMac = cfg_.endpoints.src_mac;
    pkt->clientIp = cfg_.endpoints.src_ip;
    pkt->clientPort = cfg_.endpoints.src_port;

    ++sends_;
    sentBytes_ += pkt->size();
    obs::spanRecord(spans_, fr_, eq_.now(), id, obs::SpanKind::Attempt,
                    obs::SpanPhase::Begin, spanLane_, p.attempt);
    sink_.accept(std::move(pkt));

    if (cfg_.retry.enabled()) {
        eq_.scheduleFnIn(
            [this, id, attempt = p.attempt] { onTimeout(id, attempt); },
            cfg_.retry.timeout);
    }
}

void
FleetClient::onTimeout(std::uint64_t id, unsigned attempt)
{
    auto it = pending_.find(id);
    if (it == pending_.end() || it->second.attempt != attempt)
        return; // resolved, or superseded by a newer attempt
    ++timeouts_;
    Pending &p = it->second;
    if (p.retriesUsed >= cfg_.retry.max_retries) {
        const std::uint32_t attempts = p.retriesUsed + 1;
        obs::spanRecord(spans_, fr_, eq_.now(), id,
                        obs::SpanKind::Attempt, obs::SpanPhase::End,
                        spanLane_, p.attempt, 1);
        obs::spanRecord(spans_, fr_, eq_.now(), id, obs::SpanKind::Drop,
                        obs::SpanPhase::Instant, spanLane_, attempts);
        obs::spanRecord(spans_, fr_, eq_.now(), id,
                        obs::SpanKind::Request, obs::SpanPhase::End,
                        spanLane_, attempts);
        ++failed_;
        attempts_.sample(static_cast<double>(attempts));
        if (attemptsSink_ != nullptr)
            attemptsSink_->sample(static_cast<double>(attempts));
        pending_.erase(it);
        return;
    }
    const Tick backoff = cfg_.retry.backoffFor(p.retriesUsed);
    // Attempt End args: (attempt index, backoff before the retry, us).
    obs::spanRecord(spans_, fr_, eq_.now(), id, obs::SpanKind::Attempt,
                    obs::SpanPhase::End, spanLane_, p.attempt,
                    static_cast<std::uint32_t>(backoff / kUs));
    eq_.scheduleFnIn([this, id] { retransmit(id); }, backoff);
}

void
FleetClient::retransmit(std::uint64_t id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return; // a straggler response resolved it during backoff
    Pending &p = it->second;
    ++p.retriesUsed;
    ++p.attempt;
    ++retries_;
    sendAttempt(id, p);
}

void
FleetClient::accept(net::PacketPtr pkt)
{
    auto it = pending_.find(pkt->id);
    if (it == pending_.end()) {
        // Late original racing a served retry (or a response past a
        // failed request): suppressed, never double-counted.
        ++duplicates_;
        obs::spanRecord(spans_, fr_, eq_.now(), pkt->id,
                        obs::SpanKind::Duplicate,
                        obs::SpanPhase::Instant, spanLane_);
        return;
    }
    const Tick now = eq_.now();
    const Tick lat = now - it->second.firstTx;
    latency_.sample(static_cast<double>(lat));
    obs::sloRecord(slo_, now, lat);
    delivered_.add(pkt->size());
    ++completions_;
    const std::uint32_t attempts = it->second.retriesUsed + 1;
    obs::spanRecord(spans_, fr_, now, pkt->id, obs::SpanKind::Attempt,
                    obs::SpanPhase::End, spanLane_,
                    it->second.attempt);
    obs::spanRecord(spans_, fr_, now, pkt->id, obs::SpanKind::Request,
                    obs::SpanPhase::End, spanLane_, attempts,
                    static_cast<std::uint32_t>(lat / kUs));
    attempts_.sample(static_cast<double>(attempts));
    if (attemptsSink_ != nullptr)
        attemptsSink_->sample(static_cast<double>(attempts));
    pending_.erase(it);
}

void
FleetClient::resetMeasurement()
{
    latency_.reset();
    delivered_.resetAt(eq_.now());
}

} // namespace halsim::fleet
