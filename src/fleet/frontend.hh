/**
 * @file
 * L4 fleet frontend: consistent-hash dispatch with a stateful flow
 * table for per-connection consistency, plus failover draining.
 *
 * Routing rule (HNLB/Charon style): the first packet of a flow is
 * placed by the hash ring; every later packet follows the flow-table
 * pin, even across ring changes — so a backend coming back up never
 * yanks established connections away. Only a backend-*down* event
 * moves pinned flows, and then to the ring successor the consistent
 * hash would have chosen anyway.
 *
 * On backend-down the frontend walks that backend's pinned flows:
 * every flow re-pins to its ring successor (flowsMigrated()), and
 * flows with requests still in flight are marked draining — tracked
 * to completion (drainCompleted()) or until the drain timeout expires
 * (drainTimeouts()), at which point their in-flight requests are
 * written off (the client's retry machinery re-serves them).
 *
 * The flow table is an unordered_map keyed by the packet's flowHash,
 * but it is never iterated (halint HAL-W003): failover walks
 * per-backend pinned-key vectors instead, checking each key against
 * its current pin to skip stale entries.
 */

#ifndef HALSIM_FLEET_FRONTEND_HH
#define HALSIM_FLEET_FRONTEND_HH

#include <cstdint>
// halint: allow(HAL-W003) flows_ is find/insert/erase only, never iterated
#include <unordered_map>
#include <vector>

#include "fleet/ring.hh"
#include "net/packet.hh"
#include "obs/hooks.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace halsim::fleet {

class Frontend : public net::PacketSink
{
  public:
    struct Config
    {
        unsigned vnodes = 64;          //!< ring points per backend
        Tick drain_timeout = 10 * kMs; //!< failover drain budget
    };

    Frontend(EventQueue &eq, Config cfg, unsigned backends);

    /** Wire backend @p i's ingress (its downlink). All backends must
     *  be wired before traffic starts. */
    void setBackendSink(unsigned i, net::PacketSink *sink)
    {
        sinks_[i] = sink;
    }

    /** Dispatch one request by flow pin or ring placement. */
    void accept(net::PacketPtr pkt) override;

    /** Response-path bookkeeping (called by the ResponseTap before
     *  the packet continues to the client). */
    void onResponse(const net::Packet &pkt);

    /** Health verdict changed: migrate pinned flows off @p b and
     *  start draining those with requests still in flight. */
    void onBackendDown(unsigned b);

    /** Backend recovered: new flows may land on it again; existing
     *  pins stay where they are (per-connection consistency). */
    void onBackendUp(unsigned b);

    /** Attach span/flight-recorder sinks (null = off): each sampled
     *  request gets a FrontendLookup instant; failover migrations
     *  emit Failover marks. */
    void
    attachSpans(obs::SpanTracer *spans, obs::FlightRecorder *fr,
                std::uint8_t lane)
    {
        spans_ = spans;
        fr_ = fr;
        spanLane_ = lane;
    }

    const HashRing &ring() const { return ring_; }

    // --- counters -------------------------------------------------------

    std::uint64_t dispatched() const { return dispatched_; }
    /** Requests dropped because every backend was down. */
    std::uint64_t unroutableDrops() const { return unroutableDrops_; }
    std::uint64_t flowsMigrated() const { return flowsMigrated_; }
    std::uint64_t drainStarted() const { return drainStarted_; }
    std::uint64_t drainCompleted() const { return drainCompleted_; }
    std::uint64_t drainTimeouts() const { return drainTimeouts_; }
    std::uint64_t flowCount() const { return flows_.size(); }

    /** Requests dispatched to backend @p b. */
    std::uint64_t dispatchedTo(unsigned b) const
    {
        return perBackend_[b];
    }

  private:
    struct FlowState
    {
        unsigned backend = 0;
        std::uint32_t inFlight = 0;
        bool draining = false;
    };

    void pin(std::uint32_t key, FlowState &fs, unsigned b);

    EventQueue &eq_;
    Config cfg_;
    HashRing ring_;
    std::vector<net::PacketSink *> sinks_;

    /** flowHash -> pin; looked up per packet, never iterated. */
    // halint: allow(HAL-W003) failover walks pinned_ key vectors instead
    std::unordered_map<std::uint32_t, FlowState> flows_;
    /** Keys ever pinned to each backend; entries go stale when a flow
     *  migrates and are skipped (and dropped) on the next walk. */
    std::vector<std::vector<std::uint32_t>> pinned_;

    std::vector<std::uint64_t> perBackend_;
    std::uint64_t dispatched_ = 0;
    std::uint64_t unroutableDrops_ = 0;
    std::uint64_t flowsMigrated_ = 0;
    std::uint64_t drainStarted_ = 0;
    std::uint64_t drainCompleted_ = 0;
    std::uint64_t drainTimeouts_ = 0;

    obs::SpanTracer *spans_ = nullptr;
    obs::FlightRecorder *fr_ = nullptr;
    std::uint8_t spanLane_ = 0;
};

} // namespace halsim::fleet

#endif // HALSIM_FLEET_FRONTEND_HH
