/**
 * @file
 * Epoch-driven health checker with consecutive-failure/success
 * hysteresis, clocked entirely by the DES event queue (no wall time).
 *
 * Every epoch the checker probes each backend; a backend is marked
 * down only after `fall` consecutive failed probes and back up only
 * after `rise` consecutive successes. The hysteresis is what keeps a
 * backend oscillating around the threshold from thrashing failover:
 * a flap shorter than `fall` epochs is absorbed silently, and the
 * worst-case transition rate is bounded by 1 per (fall + rise)
 * epochs (test_fleet locks this bound in).
 *
 * Probe loss (a fleet-scoped fault kind) is modeled here: an injected
 * impairment drops each probe with a given probability using the
 * injector's RNG, so lost probes look exactly like failed ones — the
 * false-positive path that makes hysteresis necessary.
 */

#ifndef HALSIM_FLEET_HEALTH_HH
#define HALSIM_FLEET_HEALTH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "fleet/backend.hh"
#include "obs/hooks.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace halsim::fleet {

class HealthChecker
{
  public:
    struct Config
    {
        Tick epoch = 2 * kMs;  //!< probe period
        unsigned fall = 3;     //!< consecutive failures before down
        unsigned rise = 2;     //!< consecutive successes before up
    };

    HealthChecker(EventQueue &eq, Config cfg,
                  std::vector<Backend *> targets);
    ~HealthChecker();

    HealthChecker(const HealthChecker &) = delete;
    HealthChecker &operator=(const HealthChecker &) = delete;

    /** Called with the backend index on a down/up transition. */
    void setOnDown(std::function<void(unsigned)> fn)
    {
        onDown_ = std::move(fn);
    }

    void setOnUp(std::function<void(unsigned)> fn)
    {
        onUp_ = std::move(fn);
    }

    /** Attach span/flight-recorder sinks (null = off): down/up
     *  transitions emit HealthDown/HealthUp marks. */
    void
    attachSpans(obs::SpanTracer *spans, obs::FlightRecorder *fr,
                std::uint8_t lane)
    {
        spans_ = spans;
        fr_ = fr;
        spanLane_ = lane;
    }

    /** Probe every epoch from now until @p until. */
    void start(Tick until);

    void stop();

    // --- fault handles -------------------------------------------------

    /** Drop each probe with probability @p loss (using the
     *  injector's RNG); a lost probe counts as a failure. */
    void
    setProbeImpairment(double loss, Rng *rng)
    {
        probeLoss_ = loss;
        probeRng_ = rng;
    }

    void
    clearProbeImpairment()
    {
        probeLoss_ = 0.0;
        probeRng_ = nullptr;
    }

    // --- state / counters ----------------------------------------------

    /** Current verdict for a backend (true until `fall` consecutive
     *  failures accumulate). */
    bool healthy(unsigned backend) const
    {
        return st_[backend].healthy;
    }

    std::uint64_t probesSent() const { return probesSent_; }
    std::uint64_t probesFailed() const { return probesFailed_; }
    std::uint64_t probesLost() const { return probesLost_; }
    std::uint64_t downTransitions() const { return downTransitions_; }
    std::uint64_t upTransitions() const { return upTransitions_; }

    const Config &config() const { return cfg_; }

  private:
    struct State
    {
        bool healthy = true;
        unsigned consecFail = 0;
        unsigned consecOk = 0;
    };

    void probeAll();

    EventQueue &eq_;
    Config cfg_;
    std::vector<Backend *> targets_;
    std::vector<State> st_;
    std::function<void(unsigned)> onDown_;
    std::function<void(unsigned)> onUp_;
    CallbackEvent probeEvent_;
    Tick until_ = 0;

    double probeLoss_ = 0.0;
    Rng *probeRng_ = nullptr;

    obs::SpanTracer *spans_ = nullptr;
    obs::FlightRecorder *fr_ = nullptr;
    std::uint8_t spanLane_ = 0;

    std::uint64_t probesSent_ = 0;
    std::uint64_t probesFailed_ = 0;
    std::uint64_t probesLost_ = 0;
    std::uint64_t downTransitions_ = 0;
    std::uint64_t upTransitions_ = 0;
};

} // namespace halsim::fleet

#endif // HALSIM_FLEET_HEALTH_HH
