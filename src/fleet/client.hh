/**
 * @file
 * Fleet load generator: a hardened client that emits real UDP
 * requests over a fixed flow population and survives backend
 * failures with timeouts, capped exponential backoff, bounded
 * retries, and duplicate suppression.
 *
 * Each request keeps one id across every retransmission; the pending
 * table resolves the first response and counts any later copy (a
 * late original racing a retry) as a suppressed duplicate, so
 * completions never double-count. End-to-end latency is measured
 * from the *first* transmission to the first response — retries make
 * the tail visible instead of hiding it.
 *
 * Accounting invariant (with the run drained to quiescence):
 *   sends() == completions() + duplicates() + losses-in-the-fleet,
 * where sends() counts attempts (first sends + retries). RunResult's
 * fleet drill test reconciles this exactly.
 */

#ifndef HALSIM_FLEET_CLIENT_HH
#define HALSIM_FLEET_CLIENT_HH

#include <cstdint>
#include <memory>
// halint: allow(HAL-W003) pending_ is find/insert/erase only, never iterated
#include <unordered_map>

#include "net/client.hh"
#include "net/packet.hh"
#include "net/traffic.hh"
#include "obs/hooks.hh"
#include "obs/slo.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace halsim::fleet {

class FleetClient : public net::PacketSink
{
  public:
    struct Config
    {
        net::FlowEndpoints endpoints;
        /** Fixed flow population; each request picks one flow
         *  uniformly (deterministic given the seed). */
        std::uint32_t flows = 512;
        std::size_t frame_bytes = net::kMtuFrameBytes;
        net::RetryPolicy retry;
        Tick resample_epoch = 1 * kMs;
        double min_rate_gbps = 0.01;
        std::uint64_t seed = 1;
    };

    FleetClient(EventQueue &eq, Config cfg, net::PacketSink &sink);
    ~FleetClient();

    FleetClient(const FleetClient &) = delete;
    FleetClient &operator=(const FleetClient &) = delete;

    /** Emit new requests from now until @p until at the process
     *  rate. Retries continue past @p until but are bounded. */
    void start(std::unique_ptr<net::RateProcess> rate, Tick until);

    /** Stop emitting new requests (pending retries keep running). */
    void stop();

    /** Responses land here. */
    void accept(net::PacketPtr pkt) override;

    void setSlo(obs::SloMonitor *m) { slo_ = m; }

    /** Attach span/flight-recorder sinks (null = off): each sampled
     *  request gets a root Request span, per-attempt child spans,
     *  and Duplicate instants for suppressed late responses. */
    void
    attachSpans(obs::SpanTracer *spans, obs::FlightRecorder *fr,
                std::uint8_t lane)
    {
        spans_ = spans;
        fr_ = fr;
        spanLane_ = lane;
    }

    /** Mirror per-request attempt counts into a registry-owned
     *  histogram (window-scoped; resetAll clears it). */
    void setAttemptsSink(Histogram *h) { attemptsSink_ = h; }

    /** Override the rate-resample period (before start()). */
    void setResampleEpoch(Tick t) { cfg_.resample_epoch = t; }

    /** Restart the latency/throughput windows at the warmup
     *  boundary; monotone counters are snapshot-differenced. */
    void resetMeasurement();

    // --- counters (monotone) -------------------------------------------

    /** Attempts put on the wire (first sends + retries). */
    std::uint64_t sends() const { return sends_; }
    std::uint64_t sentBytes() const { return sentBytes_; }
    /** Distinct requests generated. */
    std::uint64_t uniqueRequests() const { return unique_; }
    std::uint64_t retries() const { return retries_; }
    /** Attempt timeouts observed (a request can time out several
     *  times before completing or failing). */
    std::uint64_t timeouts() const { return timeouts_; }
    /** Late responses suppressed by the id-based dedup. */
    std::uint64_t duplicates() const { return duplicates_; }
    /** Requests resolved by a first response. */
    std::uint64_t completions() const { return completions_; }
    /** Requests abandoned after the retry budget. */
    std::uint64_t failed() const { return failed_; }
    /** Requests still awaiting a response or retry. */
    std::uint64_t outstanding() const { return pending_.size(); }

    /**
     * Per-request attempt counts, sampled once per *resolved*
     * request (completion or abandonment) with the attempts that
     * request made. Monotone (never window-reset), so with the run
     * drained to quiescence attempts().sum() == sends() exactly —
     * the retry-side mirror of the sent/responses/drops ledger.
     */
    const Histogram &attempts() const { return attempts_; }

    // --- measurement window reads --------------------------------------

    double p99Us() const
    {
        return ticksToUs(static_cast<Tick>(latency_.p99()));
    }

    double meanUs() const
    {
        return latency_.mean() / static_cast<double>(kUs);
    }

    const Histogram &latency() const { return latency_; }

    /** Response throughput since the last reset, Gbps. */
    double deliveredGbps() const { return delivered_.gbpsAt(eq_.now()); }

    std::uint64_t deliveredBytes() const { return delivered_.bytes(); }

    const Config &config() const { return cfg_; }

  private:
    struct Pending
    {
        std::uint32_t flowHash = 0;
        unsigned retriesUsed = 0;
        /** Attempt number; a timeout for a superseded attempt is
         *  ignored. */
        unsigned attempt = 0;
        Tick firstTx = 0;
    };

    void emitOne();
    void resample();
    void sendAttempt(std::uint64_t id, Pending &p);
    void onTimeout(std::uint64_t id, unsigned attempt);
    void retransmit(std::uint64_t id);

    EventQueue &eq_;
    Config cfg_;
    net::PacketSink &sink_;
    std::unique_ptr<net::RateProcess> rate_;
    obs::SloMonitor *slo_ = nullptr;
    Rng rng_;

    CallbackEvent emitEvent_;
    CallbackEvent resampleEvent_;
    Tick until_ = 0;
    double rateGbps_ = 0.0;
    std::uint64_t nextId_ = 1;

    /** id -> request state; find/insert/erase only, never iterated
     *  (halint HAL-W003). Bounded by the retry budget: entries leave
     *  on completion or failure. */
    // halint: allow(HAL-W003) find/insert/erase only, never iterated
    std::unordered_map<std::uint64_t, Pending> pending_;

    std::uint64_t sends_ = 0;
    std::uint64_t sentBytes_ = 0;
    std::uint64_t unique_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t completions_ = 0;
    std::uint64_t failed_ = 0;

    Histogram latency_;
    RateMeter delivered_;
    /** Attempts per resolved request; lo/hi sized so integer counts
     *  up to the retry budget land in exact bins. */
    Histogram attempts_{1.0, 1024.0, 16};
    Histogram *attemptsSink_ = nullptr;

    obs::SpanTracer *spans_ = nullptr;
    obs::FlightRecorder *fr_ = nullptr;
    std::uint8_t spanLane_ = 0;
};

} // namespace halsim::fleet

#endif // HALSIM_FLEET_CLIENT_HH
