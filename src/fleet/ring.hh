/**
 * @file
 * Consistent-hash ring over a fixed set of fleet backends.
 *
 * Each backend contributes `vnodes` points on a 64-bit ring; a flow
 * key maps to the first ring point clockwise from its hash. Backends
 * can be marked down without rebuilding the ring: lookup() simply
 * walks past points whose backend is down, so the successor a flow
 * fails over to is the same backend that would own the key if the
 * dead node had never existed — the classic consistent-hashing
 * property HNLB-style L4 balancers rely on for minimal disruption.
 *
 * Everything is deterministic: the point positions are a pure hash of
 * (backend, vnode), and lookup is a binary search plus a bounded
 * clockwise walk. No RNG, no wall clock.
 */

#ifndef HALSIM_FLEET_RING_HH
#define HALSIM_FLEET_RING_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace halsim::fleet {

/** splitmix64 finalizer: the ring's point/key hash. Public so tests
 *  and the flow-key derivation in FleetClient agree on the mixing. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

class HashRing
{
  public:
    /**
     * @param backends number of backends (> 0)
     * @param vnodes   ring points per backend (> 0); more points
     *                 smooth the load split at the cost of a larger
     *                 sorted array
     */
    HashRing(unsigned backends, unsigned vnodes);

    unsigned backends() const { return static_cast<unsigned>(up_.size()); }

    /** Mark a backend up/down; lookups skip down backends. */
    void setUp(unsigned backend, bool up);

    bool isUp(unsigned backend) const { return up_[backend] != 0; }

    /** Backends currently marked up. */
    unsigned upCount() const { return upCount_; }

    /**
     * Owner of @p key: the first up backend clockwise from the key's
     * ring position. Empty when every backend is down.
     */
    std::optional<unsigned> lookup(std::uint64_t key) const;

    /**
     * Owner of @p key ignoring backend @p excluding (also skipping
     * down backends) — where a pinned flow migrates when its backend
     * dies. Empty when no other backend is up.
     */
    std::optional<unsigned> successor(std::uint64_t key,
                                      unsigned excluding) const;

    /** Ring points (backends * vnodes). */
    std::size_t points() const { return points_.size(); }

  private:
    /** (position, backend), sorted by position then backend. */
    std::vector<std::pair<std::uint64_t, unsigned>> points_;
    std::vector<char> up_;
    unsigned upCount_ = 0;
};

} // namespace halsim::fleet

#endif // HALSIM_FLEET_RING_HH
