/**
 * @file
 * Cache-coherent shared-memory model between the SNIC processor and
 * the host processor — the substrate for HAL's stateful functions
 * (§V-C of the paper).
 *
 * The paper emulates a CXL-SNIC with a dual-socket NUMA server whose
 * sockets share state over UPI. We model the same thing one level
 * down: a two-node MSI directory over 64-byte lines, charging a local
 * cache-hit latency when a node already holds the line in a
 * sufficient state and a remote-transfer latency when the line must
 * move across the (UPI/CXL) interconnect. Stateful functions route
 * every state access through this domain, so coherence traffic and
 * its latency emerge from the access pattern rather than a fudge
 * factor.
 */

#ifndef HALSIM_COHERENCE_DOMAIN_HH
#define HALSIM_COHERENCE_DOMAIN_HH

#include <cstdint>

#include "alg/fixed_map.hh"
#include "sim/types.hh"

namespace halsim::coherence {

/** The two compute nodes sharing state. */
enum class NodeId : std::uint8_t
{
    Snic = 0,
    Host = 1,
};

/**
 * Two-node MSI directory with per-access latency accounting.
 */
class CoherenceDomain
{
  public:
    struct Config
    {
        /** Line already held in a sufficient state (L1/L2 hit). */
        Tick local_hit = 20 * kNs;
        /** Line fetched from local memory (no remote copy). */
        Tick memory_fetch = 90 * kNs;
        /**
         * Cache-line transfer or invalidation across UPI/CXL
         * (~150 ns on current parts; the paper's ~0.5 us remote-
         * socket figure is the full packet-delivery path, §III-A).
         */
        Tick remote_transfer = 150 * kNs;
        /** Bytes per coherence line. */
        std::uint32_t line_bytes = 64;
    };

    CoherenceDomain() : CoherenceDomain(Config{}) {}
    explicit CoherenceDomain(Config cfg) : cfg_(cfg) {}

    /**
     * Perform a coherent access by @p node to the line containing
     * byte address @p addr.
     *
     * @param addr   state address (functions hash keys into this space)
     * @param node   accessing node
     * @param write  true for a store (needs exclusive ownership)
     * @return latency charged to the access
     */
    Tick access(std::uint64_t addr, NodeId node, bool write);

    /** Aggregate statistics. */
    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t localHits = 0;
        std::uint64_t memoryFetches = 0;
        std::uint64_t remoteTransfers = 0;
        std::uint64_t invalidations = 0;
    };

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }

    const Config &config() const { return cfg_; }

    /**
     * Invariant check for tests: no line may be writable on both
     * nodes at once.
     * @retval true the single-writer invariant holds for every line
     */
    bool checkSingleWriterInvariant() const;

  private:
    /** Directory entry for one line. */
    struct Line
    {
        std::uint8_t sharers = 0;    //!< bit per node holding a copy
        std::int8_t owner = -1;      //!< exclusive (writable) node or -1

        bool operator==(const Line &o) const
        {
            return sharers == o.sharers && owner == o.owner;
        }
    };

    Config cfg_;
    alg::FixedMap<std::uint64_t, Line> dir_{1024};
    Stats stats_;
};

/**
 * Convenience accessor handed to a network function while it runs on
 * a particular node: accumulates the latency of its state accesses so
 * the processor model can extend the packet's service time. A null
 * domain means "run stateless" — the paper's §VII-B methodology
 * check ("ignoring the functional correctness") and the PCIe-SNIC
 * case where coherent sharing is unavailable.
 */
class StateContext
{
  public:
    /**
     * Fraction of each non-critical access's latency that remains
     * exposed after out-of-order overlap. A packet's state accesses
     * are independent (distinct keys in a batch), so an OoO core
     * overlaps their misses; the longest access dominates and the
     * rest are mostly hidden.
     */
    static constexpr double kOverlapResidual = 0.15;

    StateContext(CoherenceDomain *domain, NodeId node)
        : domain_(domain), node_(node)
    {}

    /** Coherent access to the line holding @p key. */
    void
    touch(std::uint64_t key, bool write)
    {
        ++accesses_;
        if (domain_ != nullptr) {
            const Tick cost = domain_->access(key, node_, write);
            sum_ += cost;
            if (cost > max_)
                max_ = cost;
        }
    }

    /** Exposed latency of this packet's state accesses: the longest
     *  access plus the overlap residual of the others. */
    Tick
    latency() const
    {
        return max_ + static_cast<Tick>(
                          kOverlapResidual *
                          static_cast<double>(sum_ - max_));
    }

    /** Number of state accesses performed. */
    std::uint64_t accesses() const { return accesses_; }

    NodeId node() const { return node_; }
    bool coherent() const { return domain_ != nullptr; }

  private:
    CoherenceDomain *domain_;
    NodeId node_;
    Tick sum_ = 0;
    Tick max_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace halsim::coherence

#endif // HALSIM_COHERENCE_DOMAIN_HH
