#include "coherence/domain.hh"

namespace halsim::coherence {

Tick
CoherenceDomain::access(std::uint64_t addr, NodeId node, bool write)
{
    ++stats_.accesses;
    const std::uint64_t line_id = addr / cfg_.line_bytes;
    const std::uint8_t me = std::uint8_t{1}
                            << static_cast<std::uint8_t>(node);
    const std::uint8_t other = me ^ 0b11;

    Line *line = dir_.find(line_id);
    if (line == nullptr) {
        dir_.put(line_id, Line{});
        line = dir_.find(line_id);
    }

    if (!write) {
        if (line->sharers & me) {
            // Shared or exclusive here already: plain hit.
            ++stats_.localHits;
            return cfg_.local_hit;
        }
        if (line->owner >= 0 &&
            (std::uint8_t{1} << line->owner) == other) {
            // Dirty on the other node: transfer + downgrade to shared.
            line->owner = -1;
            line->sharers |= me;
            ++stats_.remoteTransfers;
            return cfg_.remote_transfer;
        }
        // Clean (possibly shared remotely): fetch from memory.
        line->sharers |= me;
        ++stats_.memoryFetches;
        return cfg_.memory_fetch;
    }

    // Write path: need exclusive ownership.
    if (line->owner == static_cast<std::int8_t>(node)) {
        ++stats_.localHits;
        return cfg_.local_hit;
    }
    Tick cost = 0;
    if (line->sharers & other) {
        // Invalidate the remote copy (dirty transfer if it owned it).
        ++stats_.invalidations;
        cost = cfg_.remote_transfer;
        ++stats_.remoteTransfers;
    } else if (line->sharers & me) {
        // Upgrade S->M locally.
        ++stats_.localHits;
        cost = cfg_.local_hit;
    } else {
        ++stats_.memoryFetches;
        cost = cfg_.memory_fetch;
    }
    line->sharers = me;
    line->owner = static_cast<std::int8_t>(node);
    return cost;
}

bool
CoherenceDomain::checkSingleWriterInvariant() const
{
    bool ok = true;
    dir_.forEach([&](const std::uint64_t &, const Line &line) {
        if (line.owner >= 0) {
            // An owned line must be held by exactly its owner.
            const std::uint8_t bit = std::uint8_t{1} << line.owner;
            if (line.sharers != bit)
                ok = false;
        }
        if (line.sharers > 0b11)
            ok = false;
    });
    return ok;
}

} // namespace halsim::coherence
