#include "fault/fault.hh"

#include <algorithm>

namespace halsim::fault {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::CoreStall: return "core-stall";
      case FaultKind::CoreSlowdown: return "core-slowdown";
      case FaultKind::ProcessorFailure: return "processor-failure";
      case FaultKind::AccelFailure: return "accel-failure";
      case FaultKind::LinkLossBurst: return "link-loss";
      case FaultKind::LinkCorruption: return "link-corruption";
      case FaultKind::ControlLoss: return "control-loss";
      case FaultKind::ControlDelay: return "control-delay";
      case FaultKind::LbpStall: return "lbp-stall";
      case FaultKind::SwitchPortDown: return "switch-port-down";
      case FaultKind::BackendCrash: return "backend-crash";
      case FaultKind::BackendStall: return "backend-stall";
      case FaultKind::ProbeLoss: return "probe-loss";
    }
    return "?";
}

FaultPlan &
FaultPlan::processorFailure(FaultTarget t, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::ProcessorFailure;
    ev.target = t;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::coreStall(FaultTarget t, unsigned core, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::CoreStall;
    ev.target = t;
    ev.index = core;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::coreSlowdown(FaultTarget t, double speed_factor, Tick at,
                        Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::CoreSlowdown;
    ev.target = t;
    ev.magnitude = speed_factor;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::accelFailure(FaultTarget t, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::AccelFailure;
    ev.target = t;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::linkLossBurst(FaultTarget link, double drop_prob, Tick at,
                         Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::LinkLossBurst;
    ev.target = link;
    ev.magnitude = drop_prob;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::linkCorruption(FaultTarget link, double corrupt_prob, Tick at,
                          Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::LinkCorruption;
    ev.target = link;
    ev.magnitude = corrupt_prob;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::controlLoss(double drop_prob, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::ControlLoss;
    ev.magnitude = drop_prob;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::controlDelay(Tick extra, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::ControlDelay;
    ev.extra = extra;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::lbpStall(Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::LbpStall;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::switchPortDown(FaultTarget t, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::SwitchPortDown;
    ev.target = t;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::backendCrash(unsigned backend, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::BackendCrash;
    ev.index = backend;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::backendStall(unsigned backend, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::BackendStall;
    ev.index = backend;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultPlan &
FaultPlan::probeLoss(double drop_prob, Tick at, Tick duration)
{
    FaultEvent ev;
    ev.kind = FaultKind::ProbeLoss;
    ev.magnitude = drop_prob;
    ev.at = at;
    ev.duration = duration;
    return add(ev);
}

FaultInjector::FaultInjector(EventQueue &eq, const FaultPlan &plan,
                             FaultHooks hooks)
    : eq_(eq), hooks_(std::move(hooks)),
      rng_(plan.seed() ^ 0xFA017FA017ull)
{
    sched_.reserve(plan.size());
    for (const FaultEvent &ev : plan.events()) {
        auto s = std::make_unique<Scheduled>();
        s->ev = ev;
        sched_.push_back(std::move(s));
    }
}

FaultInjector::~FaultInjector()
{
    stop();
}

void
FaultInjector::start(Tick base)
{
    buckets_.clear();

    // Collect every action in plan order — each event's apply, then
    // (if bounded) its revert — and stable-sort by time alone. Actions
    // due at the same tick keep their plan-relative order and share
    // one bucket timer, so same-tick firing order is the plan's, not
    // whatever the event heap happens to do with ties.
    struct Timed
    {
        Tick when;
        Bucket::Action act;
    };
    std::vector<Timed> timed;
    timed.reserve(sched_.size() * 2);
    for (auto &s : sched_) {
        timed.push_back({base + s->ev.at, {s.get(), false}});
        if (s->ev.duration > 0) {
            timed.push_back(
                {base + s->ev.at + s->ev.duration, {s.get(), true}});
        }
    }
    std::stable_sort(timed.begin(), timed.end(),
                     [](const Timed &a, const Timed &b) {
                         return a.when < b.when;
                     });

    for (const Timed &t : timed) {
        if (buckets_.empty() || buckets_.back()->when != t.when) {
            auto b = std::make_unique<Bucket>();
            b->when = t.when;
            Bucket *bp = b.get();
            b->ev.setCallback([this, bp] {
                for (const Bucket::Action &a : bp->actions) {
                    if (a.revert)
                        unfire(*a.sched);
                    else
                        fire(*a.sched);
                }
            });
            buckets_.push_back(std::move(b));
        }
        buckets_.back()->actions.push_back(t.act);
    }

    for (auto &b : buckets_)
        eq_.schedule(&b->ev, b->when);
}

void
FaultInjector::stop()
{
    for (auto &b : buckets_) {
        if (b->ev.scheduled())
            eq_.deschedule(&b->ev);
    }
    buckets_.clear();
    for (auto &s : sched_)
        unfire(*s);
}

void
FaultInjector::fire(Scheduled &s)
{
    if (applyFault(s.ev)) {
        s.applied = true;
        ++injected_;
        ++active_;
        if (hooks_.on_inject)
            hooks_.on_inject(s.ev);
    } else {
        ++skipped_;
    }
}

void
FaultInjector::unfire(Scheduled &s)
{
    if (!s.applied || s.reverted)
        return;
    revertFault(s.ev);
    s.reverted = true;
    ++reverted_;
    --active_;
}

proc::Processor *
FaultInjector::processorFor(FaultTarget t) const
{
    switch (t) {
      case FaultTarget::Snic: return hooks_.snic;
      case FaultTarget::Host: return hooks_.host;
      default: return nullptr;
    }
}

net::Link *
FaultInjector::linkFor(FaultTarget t) const
{
    switch (t) {
      case FaultTarget::ClientLink: return hooks_.client_link;
      case FaultTarget::ReturnLink: return hooks_.return_link;
      default: return nullptr;
    }
}

bool
FaultInjector::applyFault(const FaultEvent &ev)
{
    proc::Processor *proc = processorFor(ev.target);
    net::Link *link = linkFor(ev.target);

    switch (ev.kind) {
      case FaultKind::CoreStall:
        if (proc == nullptr)
            return false;
        // A hung core busy-waits: full power, no progress.
        if (ev.index == kAllCores)
            proc->stallAll(true, 1.0);
        else
            proc->setCoreStalled(ev.index, true, 1.0);
        return true;

      case FaultKind::CoreSlowdown:
        if (proc == nullptr)
            return false;
        proc->setSpeedFactor(ev.magnitude);
        return true;

      case FaultKind::ProcessorFailure:
        if (proc == nullptr)
            return false;
        proc->fail();
        return true;

      case FaultKind::AccelFailure:
        if (proc == nullptr || !proc->usesAccel())
            return false;
        proc->failAccelerator();
        return true;

      case FaultKind::LinkLossBurst:
        if (link == nullptr)
            return false;
        link->setImpairment(ev.magnitude, 0.0, &rng_);
        return true;

      case FaultKind::LinkCorruption:
        if (link == nullptr)
            return false;
        link->setImpairment(0.0, ev.magnitude, &rng_);
        return true;

      case FaultKind::ControlLoss:
        if (!hooks_.control_impair)
            return false;
        hooks_.control_impair(ev.magnitude, 0, &rng_);
        return true;

      case FaultKind::ControlDelay:
        if (!hooks_.control_impair)
            return false;
        hooks_.control_impair(0.0, ev.extra, nullptr);
        return true;

      case FaultKind::LbpStall:
        if (!hooks_.lbp_stalled)
            return false;
        hooks_.lbp_stalled(true);
        return true;

      case FaultKind::SwitchPortDown:
        if (!hooks_.switch_port)
            return false;
        hooks_.switch_port(ev.target, false);
        return true;

      case FaultKind::BackendCrash:
        if (!hooks_.fleet_crash)
            return false;
        return hooks_.fleet_crash(ev.index, true);

      case FaultKind::BackendStall:
        if (!hooks_.fleet_stall)
            return false;
        return hooks_.fleet_stall(ev.index, true);

      case FaultKind::ProbeLoss:
        if (!hooks_.probe_impair)
            return false;
        hooks_.probe_impair(ev.magnitude, &rng_);
        return true;
    }
    return false;
}

void
FaultInjector::revertFault(const FaultEvent &ev)
{
    proc::Processor *proc = processorFor(ev.target);
    net::Link *link = linkFor(ev.target);

    switch (ev.kind) {
      case FaultKind::CoreStall:
        if (ev.index == kAllCores)
            proc->stallAll(false);
        else
            proc->setCoreStalled(ev.index, false);
        break;
      case FaultKind::CoreSlowdown:
        proc->setSpeedFactor(1.0);
        break;
      case FaultKind::ProcessorFailure:
        proc->restore();
        break;
      case FaultKind::AccelFailure:
        proc->repairAccelerator();
        break;
      case FaultKind::LinkLossBurst:
      case FaultKind::LinkCorruption:
        link->clearImpairment();
        break;
      case FaultKind::ControlLoss:
      case FaultKind::ControlDelay:
        if (hooks_.control_restore)
            hooks_.control_restore();
        break;
      case FaultKind::LbpStall:
        hooks_.lbp_stalled(false);
        break;
      case FaultKind::SwitchPortDown:
        hooks_.switch_port(ev.target, true);
        break;
      case FaultKind::BackendCrash:
        hooks_.fleet_crash(ev.index, false);
        break;
      case FaultKind::BackendStall:
        hooks_.fleet_stall(ev.index, false);
        break;
      case FaultKind::ProbeLoss:
        if (hooks_.probe_restore)
            hooks_.probe_restore();
        break;
    }
}

} // namespace halsim::fault
