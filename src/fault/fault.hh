/**
 * @file
 * Deterministic fault injection for the simulated server.
 *
 * A FaultPlan is a seed-reproducible schedule of fault events (core
 * stalls, processor fail-stops, accelerator failures, link loss or
 * corruption bursts, LBP control-channel loss/delay) expressed
 * relative to the start of a ServerSystem::run(). The FaultInjector
 * replays the plan through the discrete-event queue, applying each
 * fault at its scheduled tick and reverting it when its duration
 * elapses, so drops, failover latency, and post-recovery throughput
 * emerge from the same queueing models the healthy-path figures use.
 *
 * The injector owns its own RNG (seeded from the plan) so loss
 * randomness never perturbs the traffic generator's stream: the same
 * seed and plan reproduce bit-identical RunResult counters.
 */

#ifndef HALSIM_FAULT_FAULT_HH
#define HALSIM_FAULT_FAULT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/link.hh"
#include "proc/processor.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace halsim::fault {

/** All cores of the targeted processor. */
inline constexpr unsigned kAllCores = ~0u;

/** What breaks. */
enum class FaultKind : std::uint8_t
{
    /** A polling core hangs (busy-wait at full power); its ring backs
     *  up and tail-drops. */
    CoreStall,
    /** All cores run at a fraction of nominal speed (thermal
     *  throttling, noisy neighbour). */
    CoreSlowdown,
    /** Fail-stop crash of the whole processor: every core stops and
     *  draws nothing; packets in its rings are stranded. */
    ProcessorFailure,
    /** The accelerator pipeline dies; the feeding cores take over in
     *  software at a fraction of the accelerated rate. */
    AccelFailure,
    /** The link drops each frame with probability `magnitude`. */
    LinkLossBurst,
    /** The link corrupts each frame with probability `magnitude`;
     *  corrupted frames fail CRC at the receiver and are lost. */
    LinkCorruption,
    /** LBP->FPGA threshold updates and heartbeats are dropped with
     *  probability `magnitude`. */
    ControlLoss,
    /** LBP->FPGA updates arrive `extra` ticks late (stale). */
    ControlDelay,
    /** The LBP core hangs: no epochs, no updates, no heartbeats. */
    LbpStall,
    /** The eSwitch port toward the target processor blackholes. */
    SwitchPortDown,
    /** Fleet backend `index` fail-stops: queued + in-service requests
     *  are lost, new arrivals blackhole until recovery. */
    BackendCrash,
    /** Fleet backend `index` hangs: in-flight requests complete but
     *  nothing new is served and health probes fail. */
    BackendStall,
    /** Health probes are dropped with probability `magnitude` (a lost
     *  probe reads as a failed one — the false-positive stressor the
     *  checker's hysteresis exists for). */
    ProbeLoss,
};

const char *faultKindName(FaultKind k);

/** Which component a fault event targets. */
enum class FaultTarget : std::uint8_t
{
    Snic,
    Host,
    ClientLink,  //!< client -> server ingress link
    ReturnLink,  //!< server -> client egress link
};

/** One scheduled fault. Times are relative to the run start. */
struct FaultEvent
{
    Tick at = 0;
    /** How long the fault lasts; 0 = permanent (rest of the run). */
    Tick duration = 0;
    FaultKind kind = FaultKind::CoreStall;
    FaultTarget target = FaultTarget::Snic;
    /** Probability (loss/corruption/control loss) or speed factor
     *  (slowdown). */
    double magnitude = 1.0;
    /** Extra control-channel delay (ControlDelay). */
    Tick extra = 0;
    /** Core index for CoreStall, or kAllCores. */
    unsigned index = kAllCores;
};

/**
 * An ordered, reproducible schedule of fault events plus the seed for
 * any loss randomness. Plain data: copyable, comparable by content,
 * safe to embed in ServerConfig.
 */
class FaultPlan
{
  public:
    FaultPlan &
    add(FaultEvent ev)
    {
        events_.push_back(ev);
        return *this;
    }

    // --- convenience builders ---------------------------------------
    FaultPlan &processorFailure(FaultTarget t, Tick at, Tick duration = 0);
    FaultPlan &coreStall(FaultTarget t, unsigned core, Tick at,
                         Tick duration = 0);
    FaultPlan &coreSlowdown(FaultTarget t, double speed_factor, Tick at,
                            Tick duration = 0);
    FaultPlan &accelFailure(FaultTarget t, Tick at, Tick duration = 0);
    FaultPlan &linkLossBurst(FaultTarget link, double drop_prob, Tick at,
                             Tick duration);
    FaultPlan &linkCorruption(FaultTarget link, double corrupt_prob,
                              Tick at, Tick duration);
    FaultPlan &controlLoss(double drop_prob, Tick at, Tick duration);
    FaultPlan &controlDelay(Tick extra, Tick at, Tick duration);
    FaultPlan &lbpStall(Tick at, Tick duration);
    FaultPlan &switchPortDown(FaultTarget t, Tick at, Tick duration);
    FaultPlan &backendCrash(unsigned backend, Tick at, Tick duration = 0);
    FaultPlan &backendStall(unsigned backend, Tick at, Tick duration = 0);
    FaultPlan &probeLoss(double drop_prob, Tick at, Tick duration);

    FaultPlan &
    setSeed(std::uint64_t seed)
    {
        seed_ = seed;
        return *this;
    }

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<FaultEvent> &events() const { return events_; }
    std::uint64_t seed() const { return seed_; }

  private:
    std::vector<FaultEvent> events_;
    std::uint64_t seed_ = 1;
};

/**
 * The component handles the injector needs. Raw pointers may be null
 * (e.g. no host processor in SNIC-only mode); callbacks may be empty.
 * Faults whose target is absent are counted as skipped, not errors,
 * so one plan can run across modes.
 */
struct FaultHooks
{
    proc::Processor *snic = nullptr;
    proc::Processor *host = nullptr;
    net::Link *client_link = nullptr;
    net::Link *return_link = nullptr;
    /** Bring the eSwitch port toward a processor up/down. */
    std::function<void(FaultTarget, bool)> switch_port;
    /** Impair the LBP->FPGA channel: (loss prob, extra delay, rng). */
    std::function<void(double, Tick, Rng *)> control_impair;
    /** Restore the control channel to nominal. */
    std::function<void()> control_restore;
    /** Hang / resume the LBP core. */
    std::function<void(bool)> lbp_stalled;
    /** Crash (true) / restore (false) fleet backend `index`; returns
     *  false when the index is out of range (fault skipped). */
    std::function<bool(unsigned, bool)> fleet_crash;
    /** Stall (true) / resume (false) fleet backend `index`. */
    std::function<bool(unsigned, bool)> fleet_stall;
    /** Impair the health-probe channel: (loss prob, rng). */
    std::function<void(double, Rng *)> probe_impair;
    /** Restore the health-probe channel to nominal. */
    std::function<void()> probe_restore;
    /** Observer: a fault was applied (after the state change). Used
     *  by the flight recorder; must be read-only w.r.t. the sim. */
    std::function<void(const FaultEvent &)> on_inject;
};

/**
 * Replays a FaultPlan through the event queue. Owns the timer events
 * (so stop() can cancel cleanly) and the loss RNG (so injection never
 * perturbs the traffic stream's randomness). stop() force-reverts any
 * still-active fault, returning the system to health — permanent
 * faults last "the rest of the run", not beyond it.
 */
class FaultInjector
{
  public:
    FaultInjector(EventQueue &eq, const FaultPlan &plan, FaultHooks hooks);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Schedule every event at @p base + event.at. */
    void start(Tick base);

    /** Cancel pending timers and revert all active faults. */
    void stop();

    /** Faults actually applied. */
    std::uint64_t injected() const { return injected_; }
    /** Faults reverted (duration elapsed or stop()). */
    std::uint64_t reverted() const { return reverted_; }
    /** Faults whose target was absent in this configuration. */
    std::uint64_t skipped() const { return skipped_; }
    /** Currently-active faults. */
    unsigned active() const { return active_; }

  private:
    struct Scheduled
    {
        FaultEvent ev;
        bool applied = false;
        bool reverted = false;
    };

    /**
     * One timer shared by every apply/revert action due at the same
     * tick. Actions within a bucket run in plan order, so two events
     * scheduled for the same tick fire exactly as the plan lists them
     * — the plan is the ordering contract, not the event heap's
     * same-tick internals.
     */
    struct Bucket
    {
        struct Action
        {
            Scheduled *sched;
            bool revert;
        };

        Tick when = 0;
        CallbackEvent ev;
        std::vector<Action> actions;
    };

    void fire(Scheduled &s);
    void unfire(Scheduled &s);
    bool applyFault(const FaultEvent &ev);
    void revertFault(const FaultEvent &ev);
    proc::Processor *processorFor(FaultTarget t) const;
    net::Link *linkFor(FaultTarget t) const;

    EventQueue &eq_;
    FaultHooks hooks_;
    Rng rng_;
    std::vector<std::unique_ptr<Scheduled>> sched_;
    std::vector<std::unique_ptr<Bucket>> buckets_;
    std::uint64_t injected_ = 0;
    std::uint64_t reverted_ = 0;
    std::uint64_t skipped_ = 0;
    unsigned active_ = 0;
};

} // namespace halsim::fault

#endif // HALSIM_FAULT_FAULT_HH
